//! String interning.
//!
//! Tag names, attribute names and index terms recur millions of times across
//! a corpus; interning maps each distinct string to a dense [`Symbol`] so the
//! rest of the pipeline compares and hashes 4-byte integers instead of
//! strings. Symbols are only meaningful relative to the [`Interner`] that
//! produced them.

use crate::hash::FxHashMap;

/// A dense identifier for an interned string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The symbol's index into the interner's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A append-only string interner with O(1) two-way lookup.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Box<str>, Symbol>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner with room for `capacity` distinct strings.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            map: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
            strings: Vec::with_capacity(capacity),
        }
    }

    /// Interns `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Looks up a previously interned string without inserting.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(Symbol, &str)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = Interner::new();
        let a1 = interner.intern("author");
        let a2 = interner.intern("author");
        assert_eq!(a1, a2);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut interner = Interner::new();
        let a = interner.intern("a");
        let b = interner.intern("b");
        let c = interner.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = Interner::new();
        let words = ["dblp", "inproceedings", "title", "S", "@key"];
        let syms: Vec<Symbol> = words.iter().map(|w| interner.intern(w)).collect();
        for (word, sym) in words.iter().zip(&syms) {
            assert_eq!(interner.resolve(*sym), *word);
        }
    }

    #[test]
    fn get_does_not_insert() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("missing"), None);
        interner.intern("present");
        assert!(interner.get("present").is_some());
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut interner = Interner::new();
        interner.intern("x");
        interner.intern("y");
        let collected: Vec<(u32, String)> =
            interner.iter().map(|(s, t)| (s.0, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".into()), (1, "y".into())]);
    }
}
