//! Typed peer-to-peer message network over crossbeam channels.
//!
//! A [`Network`] of `m` peers provides every peer a handle with unbounded
//! channels to every other peer. All traffic is metered in a shared
//! [`TrafficLedger`] (message counts and wire bytes per directed edge),
//! which the benchmark harness reads to report network load. Peers can be
//! *disconnected* to inject failures in tests: sends to a disconnected peer
//! fail with [`NetworkError::PeerDown`].

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a peer in a network, dense in `0..m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

impl PeerId {
    /// Peer index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Messages must report their serialized size so that traffic can be
/// metered without actually serializing anything in-process.
pub trait Wire: Send + 'static {
    /// Estimated wire size in bytes.
    fn wire_size(&self) -> usize;
}

/// A routed message.
#[derive(Debug)]
pub struct Envelope<M> {
    /// Sender.
    pub from: PeerId,
    /// Recipient.
    pub to: PeerId,
    /// Payload.
    pub payload: M,
}

/// Network errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// The destination peer was disconnected.
    PeerDown(PeerId),
    /// The receive side timed out.
    Timeout,
    /// All senders to this peer hung up.
    Disconnected,
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::PeerDown(p) => write!(f, "peer {} is down", p.0),
            NetworkError::Timeout => write!(f, "receive timed out"),
            NetworkError::Disconnected => write!(f, "channel disconnected"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Shared traffic meter.
#[derive(Debug)]
pub struct TrafficLedger {
    m: usize,
    total_messages: AtomicU64,
    total_bytes: AtomicU64,
    /// Row-major `m × m` directed edge byte counts.
    edges: Mutex<Vec<u64>>,
}

impl TrafficLedger {
    /// Creates a ledger for `m` peers with all counters at zero.
    ///
    /// [`Network::create`] builds one internally; external transports (the
    /// framed TCP transport in [`crate::tcp`]) construct their own and
    /// share it across connections so cross-process traffic is metered
    /// under the same contract as in-process traffic.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            total_messages: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            edges: Mutex::new(vec![0; m * m]),
        }
    }

    /// Meters one message of `bytes` wire bytes on the directed edge
    /// `from → to`. Every transport records each message exactly once, at
    /// send time.
    pub fn record(&self, from: PeerId, to: PeerId, bytes: usize) {
        self.total_messages.fetch_add(1, Ordering::Relaxed);
        self.total_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let mut edges = self.edges.lock();
        edges[from.index() * self.m + to.index()] += bytes as u64;
    }

    /// Total messages sent on the network.
    pub fn messages(&self) -> u64 {
        self.total_messages.load(Ordering::Relaxed)
    }

    /// Total bytes sent on the network.
    pub fn bytes(&self) -> u64 {
        self.total_bytes.load(Ordering::Relaxed)
    }

    /// Bytes sent on the directed edge `from → to`.
    pub fn edge_bytes(&self, from: PeerId, to: PeerId) -> u64 {
        self.edges.lock()[from.index() * self.m + to.index()]
    }

    /// Bytes sent out by one peer.
    pub fn sent_by(&self, peer: PeerId) -> u64 {
        let edges = self.edges.lock();
        (0..self.m).map(|j| edges[peer.index() * self.m + j]).sum()
    }

    /// Bytes received by one peer.
    pub fn received_by(&self, peer: PeerId) -> u64 {
        let edges = self.edges.lock();
        (0..self.m).map(|i| edges[i * self.m + peer.index()]).sum()
    }

    /// Resets all counters (between experiment repetitions).
    pub fn reset(&self) {
        self.total_messages.store(0, Ordering::Relaxed);
        self.total_bytes.store(0, Ordering::Relaxed);
        for e in self.edges.lock().iter_mut() {
            *e = 0;
        }
    }
}

struct Shared {
    ledger: TrafficLedger,
    down: Vec<AtomicBool>,
}

/// A peer's handle: its inbox plus senders to every peer.
pub struct Peer<M> {
    /// This peer's id.
    pub id: PeerId,
    senders: Vec<Sender<Envelope<M>>>,
    receiver: Receiver<Envelope<M>>,
    shared: Arc<Shared>,
}

impl<M: Wire> Peer<M> {
    /// Number of peers in the network.
    pub fn network_size(&self) -> usize {
        self.senders.len()
    }

    /// Sends `payload` to `to`, metering its wire size.
    pub fn send(&self, to: PeerId, payload: M) -> Result<(), NetworkError> {
        if self.shared.down[to.index()].load(Ordering::Acquire) {
            return Err(NetworkError::PeerDown(to));
        }
        let bytes = payload.wire_size();
        let envelope = Envelope {
            from: self.id,
            to,
            payload,
        };
        self.senders[to.index()]
            .send(envelope)
            .map_err(|_| NetworkError::Disconnected)?;
        self.shared.ledger.record(self.id, to, bytes);
        Ok(())
    }

    /// Sends a clone of `payload` to every *other* peer.
    pub fn broadcast(&self, payload: &M) -> Result<(), NetworkError>
    where
        M: Clone,
    {
        for i in 0..self.senders.len() {
            let to = PeerId(i as u32);
            if to == self.id {
                continue;
            }
            self.send(to, payload.clone())?;
        }
        Ok(())
    }

    /// Blocking receive.
    pub fn recv(&self) -> Result<Envelope<M>, NetworkError> {
        self.receiver.recv().map_err(|_| NetworkError::Disconnected)
    }

    /// Receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, NetworkError> {
        self.receiver.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetworkError::Timeout,
            RecvTimeoutError::Disconnected => NetworkError::Disconnected,
        })
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.receiver.try_recv().ok()
    }
}

/// Control handle for a network: ledger access and failure injection.
pub struct Network {
    shared: Arc<Shared>,
    m: usize,
}

impl Network {
    /// Creates a network of `m` peers, returning the control handle and the
    /// per-peer handles (to be moved into peer threads).
    pub fn create<M: Wire>(m: usize) -> (Network, Vec<Peer<M>>) {
        assert!(m > 0, "network needs at least one peer");
        let shared = Arc::new(Shared {
            ledger: TrafficLedger::new(m),
            down: (0..m).map(|_| AtomicBool::new(false)).collect(),
        });
        let mut senders = Vec::with_capacity(m);
        let mut receivers = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded::<Envelope<M>>();
            senders.push(tx);
            receivers.push(rx);
        }
        let peers = receivers
            .into_iter()
            .enumerate()
            .map(|(i, receiver)| Peer {
                id: PeerId(i as u32),
                senders: senders.clone(),
                receiver,
                shared: Arc::clone(&shared),
            })
            .collect();
        (Network { shared, m }, peers)
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the network has no peers (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// The traffic ledger.
    pub fn ledger(&self) -> &TrafficLedger {
        &self.shared.ledger
    }

    /// Marks a peer as failed: subsequent sends to it error.
    pub fn disconnect(&self, peer: PeerId) {
        self.shared.down[peer.index()].store(true, Ordering::Release);
    }

    /// Restores a previously disconnected peer.
    pub fn reconnect(&self, peer: PeerId) {
        self.shared.down[peer.index()].store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(Vec<u8>);

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn point_to_point_delivery() {
        let (net, mut peers) = Network::create::<Msg>(2);
        let p1 = peers.pop().unwrap();
        let p0 = peers.pop().unwrap();
        p0.send(PeerId(1), Msg(vec![1, 2, 3])).unwrap();
        let envelope = p1.recv().unwrap();
        assert_eq!(envelope.from, PeerId(0));
        assert_eq!(envelope.payload, Msg(vec![1, 2, 3]));
        assert_eq!(net.ledger().bytes(), 3);
        assert_eq!(net.ledger().messages(), 1);
        assert_eq!(net.ledger().edge_bytes(PeerId(0), PeerId(1)), 3);
        assert_eq!(net.ledger().edge_bytes(PeerId(1), PeerId(0)), 0);
    }

    #[test]
    fn broadcast_reaches_all_other_peers() {
        let (net, peers) = Network::create::<Msg>(4);
        peers[0].broadcast(&Msg(vec![9; 10])).unwrap();
        for peer in &peers[1..] {
            let envelope = peer.recv_timeout(Duration::from_secs(1)).unwrap();
            assert_eq!(envelope.from, PeerId(0));
        }
        assert!(peers[0].try_recv().is_none(), "no self-delivery");
        assert_eq!(net.ledger().messages(), 3);
        assert_eq!(net.ledger().bytes(), 30);
    }

    #[test]
    fn cross_thread_ping_pong() {
        let (_net, mut peers) = Network::create::<Msg>(2);
        let p1 = peers.pop().unwrap();
        let p0 = peers.pop().unwrap();
        let echo = thread::spawn(move || {
            let envelope = p1.recv().unwrap();
            p1.send(envelope.from, envelope.payload).unwrap();
        });
        p0.send(PeerId(1), Msg(vec![42])).unwrap();
        let back = p0.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(back.payload, Msg(vec![42]));
        echo.join().unwrap();
    }

    #[test]
    fn disconnect_fails_sends_and_reconnect_restores() {
        let (net, peers) = Network::create::<Msg>(3);
        net.disconnect(PeerId(2));
        let err = peers[0].send(PeerId(2), Msg(vec![1])).unwrap_err();
        assert_eq!(err, NetworkError::PeerDown(PeerId(2)));
        // No traffic is metered for failed sends.
        assert_eq!(net.ledger().bytes(), 0);
        net.reconnect(PeerId(2));
        peers[0].send(PeerId(2), Msg(vec![1])).unwrap();
        assert_eq!(net.ledger().bytes(), 1);
    }

    #[test]
    fn per_peer_accounting() {
        let (net, peers) = Network::create::<Msg>(3);
        peers[0].send(PeerId(1), Msg(vec![0; 5])).unwrap();
        peers[0].send(PeerId(2), Msg(vec![0; 7])).unwrap();
        peers[1].send(PeerId(0), Msg(vec![0; 11])).unwrap();
        assert_eq!(net.ledger().sent_by(PeerId(0)), 12);
        assert_eq!(net.ledger().received_by(PeerId(0)), 11);
        assert_eq!(net.ledger().received_by(PeerId(2)), 7);
        net.ledger().reset();
        assert_eq!(net.ledger().bytes(), 0);
        assert_eq!(net.ledger().sent_by(PeerId(0)), 0);
    }

    #[test]
    fn recv_timeout_expires() {
        let (_net, peers) = Network::create::<Msg>(2);
        let err = peers[0]
            .recv_timeout(Duration::from_millis(10))
            .unwrap_err();
        assert_eq!(err, NetworkError::Timeout);
    }

    #[test]
    fn many_peers_many_messages() {
        let m = 8;
        let (net, peers) = Network::create::<Msg>(m);
        let handles: Vec<_> = peers
            .into_iter()
            .map(|peer| {
                thread::spawn(move || {
                    peer.broadcast(&Msg(vec![peer.id.0 as u8])).unwrap();
                    let mut seen = 0;
                    while seen < peer.network_size() - 1 {
                        peer.recv_timeout(Duration::from_secs(5)).unwrap();
                        seen += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(net.ledger().messages() as usize, m * (m - 1));
    }
}
