//! Length-prefixed TCP framing for the `cxk_p2p` fabric.
//!
//! The in-process network ([`crate::net`]) routes [`Envelope`]s over
//! crossbeam channels and meters their [`Wire::wire_size`] in a shared
//! [`TrafficLedger`]. This module carries the **same envelope semantics
//! across process boundaries**: a [`FramedConn`] wraps one `TcpStream` and
//! exchanges envelopes as length-prefixed frames, metering *actual* frame
//! bytes into a caller-supplied ledger. The fabric stays
//! clustering-agnostic — payloads are anything implementing [`WireCodec`],
//! and this crate knows nothing about what they mean.
//!
//! # Frame format
//!
//! Every frame is `12 + len` bytes, all integers little-endian:
//!
//! ```text
//! ┌────────────┬────────────┬────────────┬──────────────────┐
//! │ from: u32  │  to: u32   │  len: u32  │  payload (len B) │
//! └────────────┴────────────┴────────────┴──────────────────┘
//! ```
//!
//! `from`/`to` are [`PeerId`]s under whatever numbering the application
//! chose (the distributed serving layer numbers the frontend 0 and shard
//! `i`'s daemon `i + 1`). The payload is the [`WireCodec`] encoding of the
//! message.
//!
//! # Error mapping and the timeout contract
//!
//! * [`FramedConn::recv_timeout`] bounds the **whole wait** by an absolute
//!   deadline — the socket timeout is re-armed with the remaining time
//!   before every `read(2)`, so a slow-dripping peer cannot extend the
//!   wait by keeping bytes trickling in. Deadline expiry (and `WouldBlock`)
//!   surfaces as [`NetworkError::Timeout`] — the typed variant failover
//!   logic keys on.
//! * A `Timeout` is **resumable**: partially received frame bytes are
//!   retained in the connection, and the next `recv_timeout` continues the
//!   same frame where it left off. The stream never desyncs on a timeout,
//!   so an idle-polling receiver (the shard daemon) may keep the
//!   connection. A *request/response* caller should still drop the
//!   connection on timeout — the answer it stopped waiting for may arrive
//!   later and would be stale (the serving layer's shard failover does
//!   exactly that, and additionally tags requests with sequence numbers).
//! * EOF, resets and every other I/O failure surface as
//!   [`NetworkError::Disconnected`]; the connection is then dead.
//!
//! Metering records each frame once, at send time, matching the
//! in-process ledger contract.

use crate::net::{Envelope, NetworkError, PeerId, TrafficLedger, Wire};
use std::io::{Read, Write};
use std::marker::PhantomData;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frames larger than this are treated as protocol corruption rather than
/// allocated: a desynced stream must not look like a 4 GiB message.
pub const MAX_FRAME_BYTES: usize = 256 * 1024 * 1024;

/// Bytes of frame header preceding every payload (`from`, `to`, `len`).
pub const FRAME_HEADER_BYTES: usize = 12;

/// A message that can cross a byte-oriented transport: [`Wire`] (so
/// in-process metering still works) plus an explicit encoding.
///
/// Encodings must be self-delimiting within the frame: `decode` receives
/// exactly the bytes `encode` produced for one message.
pub trait WireCodec: Wire + Sized {
    /// Appends this message's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes one message from `bytes`; `None` on malformed input (the
    /// connection is then treated as [`NetworkError::Disconnected`]).
    fn decode(bytes: &[u8]) -> Option<Self>;
}

/// A cursor over a received payload, with the little-endian readers codec
/// implementations need. Every reader returns `None` past the end instead
/// of panicking, so malformed frames fail cleanly.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Whether every byte has been consumed (decoders should end here).
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let raw: [u8; 4] = self.bytes.get(self.pos..self.pos + 4)?.try_into().ok()?;
        self.pos += 4;
        Some(u32::from_le_bytes(raw))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let raw: [u8; 8] = self.bytes.get(self.pos..self.pos + 8)?.try_into().ok()?;
        self.pos += 8;
        Some(u64::from_le_bytes(raw))
    }

    /// Reads `len` raw bytes.
    pub fn bytes(&mut self, len: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(len)?)?;
        self.pos += len;
        Some(slice)
    }
}

/// One framed, metered TCP connection speaking [`Envelope`]s of `M`.
///
/// The connection is symmetric — either end may send or receive — and
/// single-threaded by design (`&mut self`): the serving layer gives each
/// worker its own connection per shard, mirroring how each in-process peer
/// owns its channel handle.
pub struct FramedConn<M: WireCodec> {
    stream: TcpStream,
    /// This endpoint's id, stamped into outgoing frames.
    id: PeerId,
    /// Shared traffic meter; `None` disables metering.
    ledger: Option<Arc<TrafficLedger>>,
    /// Reusable encode buffer.
    buf: Vec<u8>,
    /// The in-progress inbound frame, retained across timeouts.
    rx: RxFrame,
    _marker: PhantomData<M>,
}

/// Receive-side state for one frame, kept on the connection so a timeout
/// mid-frame resumes instead of desyncing the stream.
#[derive(Default)]
struct RxFrame {
    header: [u8; FRAME_HEADER_BYTES],
    header_filled: usize,
    /// Expected payload length, set once the header is complete and
    /// validated; `None` while the header is still being read.
    payload_len: Option<usize>,
    /// Payload bytes; the allocation is reused across frames.
    payload: Vec<u8>,
    payload_filled: usize,
}

/// Little-endian u32 at `offset` of a frame header. Infallible by
/// construction: callers index within `FRAME_HEADER_BYTES - 4`.
fn header_u32(header: &[u8; FRAME_HEADER_BYTES], offset: usize) -> u32 {
    u32::from_le_bytes([
        header[offset],
        header[offset + 1],
        header[offset + 2],
        header[offset + 3],
    ])
}

impl<M: WireCodec> FramedConn<M> {
    /// Wraps an established stream. `TCP_NODELAY` is set — frames are
    /// request/response sized and latency-bound, not throughput-bound.
    pub fn new(
        stream: TcpStream,
        id: PeerId,
        ledger: Option<Arc<TrafficLedger>>,
    ) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            id,
            ledger,
            buf: Vec::new(),
            rx: RxFrame::default(),
            _marker: PhantomData,
        })
    }

    /// Dials `addr` and wraps the resulting stream.
    pub fn connect(
        addr: &str,
        id: PeerId,
        ledger: Option<Arc<TrafficLedger>>,
    ) -> std::io::Result<Self> {
        Self::new(TcpStream::connect(addr)?, id, ledger)
    }

    /// This endpoint's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Re-numbers this endpoint. An accepting side that does not know the
    /// dialer's peer numbering adopts the `to` id of the first envelope it
    /// receives, so its replies carry a meaningful `from`.
    pub fn set_id(&mut self, id: PeerId) {
        self.id = id;
    }

    /// The remote endpoint's socket address.
    pub fn peer_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one envelope `self.id → to`, returning the frame bytes
    /// written (header + payload), which are also metered into the ledger.
    pub fn send(&mut self, to: PeerId, payload: &M) -> Result<usize, NetworkError> {
        self.buf.clear();
        self.buf.extend_from_slice(&self.id.0.to_le_bytes());
        self.buf.extend_from_slice(&to.0.to_le_bytes());
        self.buf.extend_from_slice(&[0u8; 4]); // len backpatched below
        payload.encode(&mut self.buf);
        let len = self.buf.len() - FRAME_HEADER_BYTES;
        if len > MAX_FRAME_BYTES {
            return Err(NetworkError::Disconnected);
        }
        self.buf[8..12].copy_from_slice(&(len as u32).to_le_bytes());
        self.stream
            .write_all(&self.buf)
            .map_err(|_| NetworkError::Disconnected)?;
        if let Some(ledger) = &self.ledger {
            ledger.record(self.id, to, self.buf.len());
        }
        Ok(self.buf.len())
    }

    /// Receives one envelope, waiting at most `timeout` **in total**,
    /// returning it with the frame bytes read. The deadline is absolute:
    /// the socket timeout is re-armed with the remaining time before each
    /// read, so slowly arriving bytes cannot stretch the wait.
    ///
    /// # Errors
    /// [`NetworkError::Timeout`] when the deadline passes. Partially
    /// received frame bytes stay buffered on the connection and the next
    /// call resumes the same frame — a timeout never desyncs the stream
    /// (but see the module docs for why request/response callers should
    /// drop the connection anyway). [`NetworkError::Disconnected`] on EOF,
    /// I/O failure, an oversized frame, or a payload `M::decode` rejects;
    /// the connection is then dead.
    pub fn recv_timeout(
        &mut self,
        timeout: Duration,
    ) -> Result<(Envelope<M>, usize), NetworkError> {
        let deadline = Instant::now() + timeout;
        let rx = &mut self.rx;
        while rx.header_filled < FRAME_HEADER_BYTES {
            let n = read_some(
                &mut self.stream,
                &mut rx.header[rx.header_filled..],
                deadline,
            )?;
            rx.header_filled += n;
        }
        let len = match rx.payload_len {
            Some(len) => len,
            None => {
                let len = header_u32(&rx.header, 8) as usize;
                if len > MAX_FRAME_BYTES {
                    return Err(NetworkError::Disconnected);
                }
                rx.payload.clear();
                rx.payload.resize(len, 0);
                rx.payload_len = Some(len);
                rx.payload_filled = 0;
                len
            }
        };
        while rx.payload_filled < len {
            let n = read_some(
                &mut self.stream,
                &mut rx.payload[rx.payload_filled..len],
                deadline,
            )?;
            rx.payload_filled += n;
        }
        let from = PeerId(header_u32(&rx.header, 0));
        let to = PeerId(header_u32(&rx.header, 4));
        rx.header_filled = 0;
        rx.payload_len = None;
        rx.payload_filled = 0;
        let payload = M::decode(&rx.payload[..len]).ok_or(NetworkError::Disconnected)?;
        Ok((Envelope { from, to, payload }, FRAME_HEADER_BYTES + len))
    }
}

/// One `read(2)` bounded by the absolute `deadline`, with the module's
/// error mapping: deadline expiry and socket timeouts stay typed, EOF and
/// all other failures collapse to `Disconnected`. Returns `Ok(0)` only on
/// `Interrupted` (the caller's fill loop simply retries).
fn read_some(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<usize, NetworkError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(NetworkError::Timeout);
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|_| NetworkError::Disconnected)?;
    match stream.read(buf) {
        Ok(0) => Err(NetworkError::Disconnected),
        Ok(n) => Ok(n),
        Err(e) => match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                Err(NetworkError::Timeout)
            }
            std::io::ErrorKind::Interrupted => Ok(0),
            _ => Err(NetworkError::Disconnected),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    #[derive(Debug, Clone, PartialEq)]
    struct Msg(Vec<u8>);

    impl Wire for Msg {
        fn wire_size(&self) -> usize {
            4 + self.0.len()
        }
    }

    impl WireCodec for Msg {
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&(self.0.len() as u32).to_le_bytes());
            buf.extend_from_slice(&self.0);
        }

        fn decode(bytes: &[u8]) -> Option<Self> {
            let mut r = WireReader::new(bytes);
            let len = r.u32()? as usize;
            let body = r.bytes(len)?.to_vec();
            r.is_exhausted().then_some(Msg(body))
        }
    }

    /// A connected loopback pair.
    fn pair(ledger: Option<Arc<TrafficLedger>>) -> (FramedConn<Msg>, FramedConn<Msg>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let dialer = thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (accepted, _) = listener.accept().expect("accept");
        let client = dialer.join().expect("dial");
        (
            FramedConn::new(client, PeerId(0), ledger.clone()).expect("client conn"),
            FramedConn::new(accepted, PeerId(1), ledger).expect("server conn"),
        )
    }

    #[test]
    fn round_trip_preserves_envelope_and_meters_frames() {
        let ledger = Arc::new(TrafficLedger::new(2));
        let (mut a, mut b) = pair(Some(Arc::clone(&ledger)));
        let sent = a.send(PeerId(1), &Msg(vec![7, 8, 9])).expect("send");
        assert_eq!(sent, FRAME_HEADER_BYTES + 4 + 3);
        let (envelope, read) = b.recv_timeout(Duration::from_secs(5)).expect("recv");
        assert_eq!(envelope.from, PeerId(0));
        assert_eq!(envelope.to, PeerId(1));
        assert_eq!(envelope.payload, Msg(vec![7, 8, 9]));
        assert_eq!(read, sent);
        // Metered once, at send time, with actual frame bytes.
        assert_eq!(ledger.messages(), 1);
        assert_eq!(ledger.bytes(), sent as u64);
        assert_eq!(ledger.edge_bytes(PeerId(0), PeerId(1)), sent as u64);
        assert_eq!(ledger.edge_bytes(PeerId(1), PeerId(0)), 0);
    }

    #[test]
    fn both_directions_and_empty_payloads() {
        let (mut a, mut b) = pair(None);
        b.send(PeerId(0), &Msg(vec![])).expect("send");
        a.send(PeerId(1), &Msg(vec![1])).expect("send");
        let (from_b, _) = a.recv_timeout(Duration::from_secs(5)).expect("recv");
        let (from_a, _) = b.recv_timeout(Duration::from_secs(5)).expect("recv");
        assert_eq!(from_b.payload, Msg(vec![]));
        assert_eq!(from_a.payload, Msg(vec![1]));
    }

    #[test]
    fn recv_timeout_is_typed() {
        let (mut a, _b) = pair(None);
        let err = a.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, NetworkError::Timeout);
    }

    #[test]
    fn timeout_mid_frame_resumes_on_next_recv() {
        let (mut a, b) = pair(None);
        // Hand-feed half a frame, let the receiver time out mid-frame,
        // then complete it: the next recv must return the intact message.
        let mut frame = Vec::new();
        frame.extend_from_slice(&1u32.to_le_bytes()); // from
        frame.extend_from_slice(&0u32.to_le_bytes()); // to
        frame.extend_from_slice(&7u32.to_le_bytes()); // len
        frame.extend_from_slice(&3u32.to_le_bytes()); // Msg inner len
        frame.extend_from_slice(&[4, 5, 6]);
        let mut raw = b.stream.try_clone().expect("clone");
        raw.write_all(&frame[..9]).expect("write first half");
        let err = a.recv_timeout(Duration::from_millis(30)).unwrap_err();
        assert_eq!(err, NetworkError::Timeout);
        raw.write_all(&frame[9..]).expect("write second half");
        let (envelope, read) = a
            .recv_timeout(Duration::from_secs(5))
            .expect("resumed recv");
        assert_eq!(envelope.from, PeerId(1));
        assert_eq!(envelope.payload, Msg(vec![4, 5, 6]));
        assert_eq!(read, frame.len());
        drop(b);
    }

    #[test]
    fn slow_drip_cannot_extend_the_deadline() {
        let (mut a, b) = pair(None);
        // A peer dripping one byte per 20 ms keeps every per-read timer
        // happy forever; the absolute deadline must still fire.
        let mut raw = b.stream.try_clone().expect("clone");
        let dripper = thread::spawn(move || {
            for _ in 0..50 {
                if raw.write_all(&[0]).is_err() {
                    return;
                }
                thread::sleep(Duration::from_millis(20));
            }
        });
        let t0 = std::time::Instant::now();
        let err = a.recv_timeout(Duration::from_millis(120)).unwrap_err();
        assert_eq!(err, NetworkError::Timeout);
        assert!(
            t0.elapsed() < Duration::from_millis(900),
            "deadline stretched to {:?} by the drip-feed",
            t0.elapsed()
        );
        drop(a);
        dripper.join().expect("dripper");
    }

    #[test]
    fn peer_hangup_is_disconnected() {
        let (mut a, b) = pair(None);
        drop(b);
        let err = a.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetworkError::Disconnected);
    }

    #[test]
    fn garbage_payload_is_disconnected_not_panic() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            // Valid header claiming a 2-byte payload that Msg::decode
            // rejects (its inner length prefix points past the end).
            let mut frame = Vec::new();
            frame.extend_from_slice(&0u32.to_le_bytes());
            frame.extend_from_slice(&1u32.to_le_bytes());
            frame.extend_from_slice(&2u32.to_le_bytes());
            frame.extend_from_slice(&[0xFF, 0xFF]);
            s.write_all(&frame).expect("write");
        });
        let (accepted, _) = listener.accept().expect("accept");
        let mut conn = FramedConn::<Msg>::new(accepted, PeerId(1), None).expect("conn");
        let err = conn.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetworkError::Disconnected);
        writer.join().expect("writer");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut frame = Vec::new();
            frame.extend_from_slice(&0u32.to_le_bytes());
            frame.extend_from_slice(&1u32.to_le_bytes());
            frame.extend_from_slice(&u32::MAX.to_le_bytes());
            s.write_all(&frame).expect("write");
        });
        let (accepted, _) = listener.accept().expect("accept");
        let mut conn = FramedConn::<Msg>::new(accepted, PeerId(1), None).expect("conn");
        let err = conn.recv_timeout(Duration::from_secs(5)).unwrap_err();
        assert_eq!(err, NetworkError::Disconnected);
        writer.join().expect("writer");
    }

    #[test]
    fn wire_reader_bounds() {
        let mut r = WireReader::new(&[1, 0, 0, 0, 9]);
        assert_eq!(r.u32(), Some(1));
        assert!(!r.is_exhausted());
        assert_eq!(r.u8(), Some(9));
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), None);
        assert_eq!(r.u64(), None);
        assert_eq!(r.bytes(1), None);
    }
}
