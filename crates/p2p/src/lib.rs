//! In-process P2P fabric for `cxkmeans`.
//!
//! The paper evaluates CXK-means on a 19-node GigaBit cluster. This crate
//! substitutes that testbed (see `DESIGN.md` §2) with two complementary
//! facilities:
//!
//! * [`net`] — a typed message-passing network whose peers are real OS
//!   threads connected by crossbeam channels, with per-edge traffic
//!   accounting. Used by the threaded CXK-means runner to exercise genuine
//!   concurrency and by the protocol tests.
//! * [`tcp`] — the same envelope semantics over length-prefixed TCP
//!   frames, for fabrics that span process boundaries (the distributed
//!   serving layer). Traffic is metered into the same [`TrafficLedger`].
//! * [`simclock`] — a deterministic simulated clock implementing the
//!   paper's own cost model (§4.3.4): main-memory work is charged at
//!   `t_mem` per operation unit and transfers at `t_comm` per byte, with
//!   per-round time being the maximum over peers (peers run in parallel).
//!   The efficiency figures (Fig. 7, Fig. 8) are generated against this
//!   clock so their shape does not depend on how many physical cores the
//!   reproduction host happens to have.

#![warn(missing_docs)]

pub mod net;
pub mod simclock;
pub mod tcp;

pub use net::{Envelope, Network, NetworkError, Peer, PeerId, TrafficLedger, Wire};
pub use simclock::{CostModel, RoundSample, SimClock};
pub use tcp::{FramedConn, WireCodec, WireReader};
