//! Deterministic simulated clock implementing the paper's cost model.
//!
//! §4.3.4 models the per-node time of one CXK-means execution as
//! `C_mem · t_mem + C_comm · t_comm`; peers run concurrently, so the
//! wall-clock of one collaborative round is the **maximum** over peers of
//! their round cost. [`SimClock`] accumulates rounds of
//! `(work units, comm bytes, messages)` samples and reports the simulated
//! total, letting the Fig. 7 / Fig. 8 harnesses sweep network sizes without
//! needing 19 physical machines.
//!
//! The default [`CostModel`] is calibrated so that a memory op-unit is a few
//! nanoseconds (one similarity accumulation on the paper's Itanium nodes)
//! and a transferred byte costs on the order of a GigaBit link with LAN
//! latency per message.

/// Cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds per main-memory operation unit (`t_mem`).
    pub t_mem: f64,
    /// Seconds per transferred byte (`t_comm`).
    pub t_comm: f64,
    /// Fixed per-message latency in seconds.
    pub latency: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            // ~5 ns per op-unit: one fused similarity multiply-accumulate.
            t_mem: 5e-9,
            // Effective per-byte cost of a representative transfer on the
            // paper's GigaBit testbed, including serialization, framing and
            // protocol overhead (calibrated so the saturation points land
            // in the 4-9 node range the paper reports; see EXPERIMENTS.md).
            t_comm: 80e-9,
            // Per-message LAN latency including middleware overhead.
            latency: 250e-6,
        }
    }
}

impl CostModel {
    /// A model with zero communication cost (ideal network), useful for
    /// ablations isolating the compute term.
    pub fn free_network(t_mem: f64) -> Self {
        Self {
            t_mem,
            t_comm: 0.0,
            latency: 0.0,
        }
    }
}

/// One peer's cost sample for one round.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundSample {
    /// Main-memory operation units performed this round.
    pub work_units: u64,
    /// Bytes sent or received by this peer this round.
    pub comm_bytes: u64,
    /// Messages sent by this peer this round.
    pub messages: u64,
}

impl RoundSample {
    /// The peer's simulated time for this round.
    pub fn seconds(&self, model: &CostModel) -> f64 {
        self.work_units as f64 * model.t_mem
            + self.comm_bytes as f64 * model.t_comm
            + self.messages as f64 * model.latency
    }
}

/// Accumulates per-round, per-peer samples into a simulated elapsed time.
#[derive(Debug, Clone)]
pub struct SimClock {
    model: CostModel,
    elapsed: f64,
    rounds: usize,
    total_work: u64,
    total_bytes: u64,
    total_messages: u64,
}

impl SimClock {
    /// Creates a clock with the given cost model.
    pub fn new(model: CostModel) -> Self {
        Self {
            model,
            elapsed: 0.0,
            rounds: 0,
            total_work: 0,
            total_bytes: 0,
            total_messages: 0,
        }
    }

    /// Advances the clock by one round: elapsed time grows by the maximum
    /// per-peer round cost (peers run in parallel).
    pub fn advance_round(&mut self, samples: &[RoundSample]) {
        let round_time = samples
            .iter()
            .map(|s| s.seconds(&self.model))
            .fold(0.0f64, f64::max);
        self.elapsed += round_time;
        self.rounds += 1;
        for s in samples {
            self.total_work += s.work_units;
            self.total_bytes += s.comm_bytes;
            self.total_messages += s.messages;
        }
    }

    /// Charges serial (non-overlapped) work, e.g. the trivial startup of the
    /// `N0` process.
    pub fn advance_serial(&mut self, work_units: u64) {
        self.elapsed += work_units as f64 * self.model.t_mem;
    }

    /// Simulated elapsed seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed
    }

    /// Number of rounds recorded.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Sum of work units over all peers and rounds.
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Sum of transferred bytes over all peers and rounds.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Sum of messages over all peers and rounds.
    pub fn total_messages(&self) -> u64 {
        self.total_messages
    }

    /// The cost model in use.
    pub fn model(&self) -> &CostModel {
        &self.model
    }
}

/// The paper's analytic global time bound `f(m)` (§4.3.4):
///
/// ```text
/// f(m) = |tr_max| · |u_max| · ( |tr_max|² · |S|² · t_mem / (h · m)
///                             + k · t_comm · (m − 1) )
/// ```
///
/// `h ∈ [1, k]` captures how evenly transactions spread over clusters
/// (`h = k` for perfectly balanced clusters).
pub fn analytic_time(
    m: usize,
    dataset_size: usize,
    tr_max: usize,
    u_max: usize,
    k: usize,
    h: f64,
    model: &CostModel,
) -> f64 {
    assert!(m >= 1 && h > 0.0);
    let tr = tr_max as f64;
    let u = u_max as f64;
    let s = dataset_size as f64;
    let compute = tr * tr * s * s * model.t_mem / (h * m as f64);
    let comm = k as f64 * model.t_comm * (m as f64 - 1.0);
    tr * u * (compute + comm)
}

/// The analytic optimum `m* = |S|/√h · √(|tr_max|² · t_mem / (k · t_comm))`
/// minimizing [`analytic_time`].
pub fn analytic_optimum_m(
    dataset_size: usize,
    tr_max: usize,
    k: usize,
    h: f64,
    model: &CostModel,
) -> f64 {
    let s = dataset_size as f64;
    let tr = tr_max as f64;
    if model.t_comm == 0.0 {
        return f64::INFINITY;
    }
    s / h.sqrt() * (tr * tr * model.t_mem / (k as f64 * model.t_comm)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_time_is_peer_maximum() {
        let model = CostModel {
            t_mem: 1.0,
            t_comm: 0.0,
            latency: 0.0,
        };
        let mut clock = SimClock::new(model);
        clock.advance_round(&[
            RoundSample {
                work_units: 10,
                ..Default::default()
            },
            RoundSample {
                work_units: 30,
                ..Default::default()
            },
            RoundSample {
                work_units: 20,
                ..Default::default()
            },
        ]);
        assert_eq!(clock.elapsed_seconds(), 30.0);
        assert_eq!(clock.rounds(), 1);
        assert_eq!(clock.total_work(), 60);
    }

    #[test]
    fn comm_and_latency_are_charged() {
        let model = CostModel {
            t_mem: 0.0,
            t_comm: 2.0,
            latency: 5.0,
        };
        let mut clock = SimClock::new(model);
        clock.advance_round(&[RoundSample {
            work_units: 0,
            comm_bytes: 3,
            messages: 2,
        }]);
        assert_eq!(clock.elapsed_seconds(), 3.0 * 2.0 + 2.0 * 5.0);
        assert_eq!(clock.total_bytes(), 3);
        assert_eq!(clock.total_messages(), 2);
    }

    #[test]
    fn rounds_accumulate() {
        let mut clock = SimClock::new(CostModel::free_network(1.0));
        for _ in 0..5 {
            clock.advance_round(&[RoundSample {
                work_units: 7,
                ..Default::default()
            }]);
        }
        clock.advance_serial(3);
        assert_eq!(clock.elapsed_seconds(), 38.0);
        assert_eq!(clock.rounds(), 5);
    }

    #[test]
    fn analytic_curve_is_unimodal_with_interior_minimum() {
        let model = CostModel::default();
        // DBLP-scale: |S| ~ 5884, k = 16.
        let times: Vec<f64> = (1..=40)
            .map(|m| analytic_time(m, 5884, 6, 40, 16, 8.0, &model))
            .collect();
        // Hyperbola + linear: strictly decreasing then increasing.
        let min_idx = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for w in times[..=min_idx].windows(2) {
            assert!(w[0] >= w[1], "decreasing before the minimum");
        }
        for w in times[min_idx..].windows(2) {
            assert!(w[0] <= w[1], "increasing after the minimum");
        }
        assert!(min_idx > 0, "minimum is interior");
    }

    #[test]
    fn analytic_optimum_matches_curve_minimum() {
        // Use coefficients that place the optimum at a small m so the
        // discrete search brackets it comfortably.
        let model = CostModel {
            t_mem: 5e-9,
            t_comm: 5e-4,
            latency: 0.0,
        };
        let (s, tr, u, k, h) = (500usize, 6usize, 40usize, 16usize, 8.0f64);
        let m_star = analytic_optimum_m(s, tr, k, h, &model);
        let (best_m, _) = (1..=200)
            .map(|m| (m, analytic_time(m, s, tr, u, k, h, &model)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        // The discrete minimizer must be one of the integers adjacent to m*.
        assert!(
            (best_m as f64 - m_star).abs() <= 1.0,
            "m*={m_star}, discrete={best_m}"
        );
    }

    #[test]
    fn optimum_grows_with_dataset_size() {
        // §4.3.4: the upper bound for m is directly proportional to |S|.
        let model = CostModel::default();
        let small = analytic_optimum_m(1000, 6, 16, 8.0, &model);
        let large = analytic_optimum_m(2000, 6, 16, 8.0, &model);
        assert!((large / small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn free_network_has_infinite_optimum() {
        let model = CostModel::free_network(1e-9);
        assert!(analytic_optimum_m(1000, 6, 16, 8.0, &model).is_infinite());
    }
}
