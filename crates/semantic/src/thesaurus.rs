//! Synonym rings over tag names.
//!
//! A [`Thesaurus`] is a set of disjoint *rings*: groups of tag names that
//! denote the same concept in different markup dialects. A ring behaves
//! like a WordNet synset restricted to element names. The derived
//! [`SynonymMatcher`] grades two distinct tags at `ring_score` (default
//! `1.0`, a full match as in \[33\]) when they share a ring and `0.0`
//! otherwise, and resolves symbols through a precomputed map so `delta`
//! stays O(1) inside the Eq. (3) inner loop.

use cxk_transact::TagMatcher;
use cxk_util::{FxHashMap, Interner, Symbol};

/// Disjoint synonym rings over tag names.
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// Ring id per member name.
    ring_of: FxHashMap<Box<str>, u32>,
    rings: usize,
    ring_score: f64,
}

impl Thesaurus {
    /// Creates an empty thesaurus with a full-match ring score of `1.0`.
    pub fn new() -> Self {
        Self {
            ring_of: FxHashMap::default(),
            rings: 0,
            ring_score: 1.0,
        }
    }

    /// Sets the score granted to distinct same-ring tags (default `1.0`).
    ///
    /// # Panics
    /// Panics if `score ∉ [0, 1]`.
    pub fn with_ring_score(mut self, score: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&score),
            "ring score must be in [0,1], got {score}"
        );
        self.ring_score = score;
        self
    }

    /// Adds a ring of mutually synonymous tag names.
    ///
    /// # Panics
    /// Panics if any member already belongs to another ring (rings must be
    /// disjoint for `delta` to be well defined).
    pub fn add_ring(&mut self, members: &[&str]) {
        let id = self.rings as u32;
        self.rings += 1;
        for &name in members {
            let previous = self.ring_of.insert(name.into(), id);
            assert!(
                previous.is_none(),
                "tag '{name}' already belongs to another synonym ring"
            );
        }
    }

    /// Number of rings.
    pub fn len(&self) -> usize {
        self.rings
    }

    /// Whether the thesaurus has no rings.
    pub fn is_empty(&self) -> bool {
        self.rings == 0
    }

    /// Whether two tag *names* are synonymous (same ring).
    pub fn synonymous(&self, a: &str, b: &str) -> bool {
        match (self.ring_of.get(a), self.ring_of.get(b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Compiles a matcher against `interner`'s tag vocabulary. Tags not in
    /// any ring fall back to exact matching. Symbols interned *after* this
    /// call are unknown to the matcher and also fall back to exact match.
    pub fn matcher(&self, interner: &Interner) -> SynonymMatcher {
        let mut ring_of_symbol = FxHashMap::default();
        for index in 0..interner.len() {
            let sym = Symbol(index as u32);
            if let Some(&ring) = self.ring_of.get(interner.resolve(sym)) {
                ring_of_symbol.insert(sym, ring);
            }
        }
        SynonymMatcher {
            ring_of_symbol,
            ring_score: self.ring_score,
        }
    }
}

/// A compiled synonym matcher: `Δ(a, b) = 1` if `a == b`, `ring_score` if
/// the tags share a ring, else `0`.
#[derive(Debug, Clone)]
pub struct SynonymMatcher {
    ring_of_symbol: FxHashMap<Symbol, u32>,
    ring_score: f64,
}

impl SynonymMatcher {
    /// The graded match (exposed for tests and diagnostics).
    #[inline]
    pub fn delta_of(&self, a: Symbol, b: Symbol) -> f64 {
        if a == b {
            return 1.0;
        }
        match (self.ring_of_symbol.get(&a), self.ring_of_symbol.get(&b)) {
            (Some(ra), Some(rb)) if ra == rb => self.ring_score,
            _ => 0.0,
        }
    }

    /// Number of vocabulary symbols covered by some ring.
    pub fn covered(&self) -> usize {
        self.ring_of_symbol.len()
    }
}

impl TagMatcher for SynonymMatcher {
    #[inline]
    fn delta(&self, a: Symbol, b: Symbol) -> f64 {
        self.delta_of(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_transact::{tag_path_similarity, tag_path_similarity_with};

    fn setup() -> (Interner, SynonymMatcher) {
        let mut interner = Interner::new();
        for t in ["dblp", "author", "creator", "title", "name", "year"] {
            interner.intern(t);
        }
        let mut thesaurus = Thesaurus::new();
        thesaurus.add_ring(&["author", "creator", "writer"]);
        thesaurus.add_ring(&["title", "name"]);
        let matcher = thesaurus.matcher(&interner);
        (interner, matcher)
    }

    #[test]
    fn synonyms_match_fully_by_default() {
        let (mut interner, matcher) = setup();
        let author = interner.intern("author");
        let creator = interner.intern("creator");
        let year = interner.intern("year");
        assert_eq!(matcher.delta_of(author, creator), 1.0);
        assert_eq!(matcher.delta_of(author, author), 1.0);
        assert_eq!(matcher.delta_of(author, year), 0.0);
    }

    #[test]
    fn rings_are_not_transitive_across_groups() {
        let (mut interner, matcher) = setup();
        let author = interner.intern("author");
        let title = interner.intern("title");
        let name = interner.intern("name");
        assert_eq!(matcher.delta_of(title, name), 1.0);
        assert_eq!(matcher.delta_of(author, name), 0.0);
    }

    #[test]
    fn ring_score_grades_partial_synonymy() {
        let mut interner = Interner::new();
        let a = interner.intern("author");
        let c = interner.intern("creator");
        let mut thesaurus = Thesaurus::new().with_ring_score(0.6);
        thesaurus.add_ring(&["author", "creator"]);
        let matcher = thesaurus.matcher(&interner);
        assert_eq!(matcher.delta_of(a, c), 0.6);
        assert_eq!(
            matcher.delta_of(a, a),
            1.0,
            "identity overrides the ring score"
        );
    }

    #[test]
    fn unknown_symbols_fall_back_to_exact() {
        let (mut interner, matcher) = setup();
        let late = interner.intern("interned-after-compile");
        assert_eq!(matcher.delta_of(late, late), 1.0);
        let author = interner.intern("author");
        assert_eq!(matcher.delta_of(late, author), 0.0);
    }

    #[test]
    #[should_panic(expected = "already belongs to another synonym ring")]
    fn overlapping_rings_are_rejected() {
        let mut thesaurus = Thesaurus::new();
        thesaurus.add_ring(&["author", "creator"]);
        thesaurus.add_ring(&["creator", "maker"]);
    }

    #[test]
    fn dialect_paths_become_similar_under_the_matcher() {
        let (mut interner, matcher) = setup();
        let p1: Vec<Symbol> = ["dblp", "author"]
            .iter()
            .map(|t| interner.intern(t))
            .collect();
        let p2: Vec<Symbol> = ["dblp", "creator"]
            .iter()
            .map(|t| interner.intern(t))
            .collect();
        let exact = tag_path_similarity(&p1, &p2);
        let semantic = tag_path_similarity_with(&p1, &p2, &matcher);
        assert!((exact - 0.5).abs() < 1e-12, "only dblp matches exactly");
        assert!(
            (semantic - 1.0).abs() < 1e-12,
            "synonym ring unifies the paths"
        );
    }

    #[test]
    #[should_panic(expected = "ring score must be in [0,1]")]
    fn rejects_out_of_range_ring_score() {
        let _ = Thesaurus::new().with_ring_score(1.5);
    }
}
