//! An is-a concept hierarchy with Wu–Palmer tag similarity.
//!
//! A [`Taxonomy`] is a rooted tree of *concepts*; tag names are assigned to
//! concepts. The derived [`TaxonomyMatcher`] grades two tags by the
//! Wu–Palmer similarity of their concepts,
//!
//! ```text
//! wup(a, b) = 2·depth(lca(a, b)) / (depth(a) + depth(b))
//! ```
//!
//! with the root at depth 1 so that `wup` of two top-level concepts is
//! positive only through the root when they share it. Tags assigned to the
//! same concept score `1`; tags not assigned anywhere fall back to exact
//! matching. This mirrors how the authors' earlier semantic work \[33\]
//! scores element names through WordNet hypernym paths.

use cxk_transact::TagMatcher;
use cxk_util::{FxHashMap, Interner, Symbol};

/// Identifier of a concept in a taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConceptId(u32);

/// A rooted is-a hierarchy of named concepts with tag assignments.
#[derive(Debug, Clone)]
pub struct Taxonomy {
    /// Parent of each concept; the root is its own parent.
    parent: Vec<u32>,
    /// Depth of each concept; root depth is 1.
    depth: Vec<u32>,
    names: FxHashMap<Box<str>, ConceptId>,
    /// Concept assigned to each tag name.
    concept_of: FxHashMap<Box<str>, ConceptId>,
    /// Wu–Palmer scores below this floor are clamped to 0 in the matcher.
    floor: f64,
}

impl Taxonomy {
    /// Creates a taxonomy containing only the named root concept.
    pub fn with_root(root: &str) -> Self {
        let mut names = FxHashMap::default();
        names.insert(root.into(), ConceptId(0));
        Self {
            parent: vec![0],
            depth: vec![1],
            names,
            concept_of: FxHashMap::default(),
            floor: 0.0,
        }
    }

    /// Sets the matcher's relatedness floor: Wu–Palmer scores strictly
    /// below `floor` count as no match. Every pair of concepts scores
    /// positively through the root, so shallow taxonomies over-grade
    /// unrelated tags; a floor (typically `0.5`) restores the
    /// discrimination that exact matching provides between genuinely
    /// unrelated fields while keeping graded credit for near concepts.
    ///
    /// # Panics
    /// Panics if `floor ∉ [0, 1]`.
    pub fn with_floor(mut self, floor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&floor),
            "floor must be in [0,1], got {floor}"
        );
        self.floor = floor;
        self
    }

    /// The root concept.
    pub fn root(&self) -> ConceptId {
        ConceptId(0)
    }

    /// Adds a concept under `parent` and returns its id.
    ///
    /// # Panics
    /// Panics if `name` already exists.
    pub fn add_concept(&mut self, name: &str, parent: ConceptId) -> ConceptId {
        assert!(
            !self.names.contains_key(name),
            "concept '{name}' already defined"
        );
        let id = ConceptId(self.parent.len() as u32);
        self.parent.push(parent.0);
        self.depth.push(self.depth[parent.0 as usize] + 1);
        self.names.insert(name.into(), id);
        id
    }

    /// Looks up a concept by name.
    pub fn concept(&self, name: &str) -> Option<ConceptId> {
        self.names.get(name).copied()
    }

    /// Assigns a tag name to a concept. Re-assigning overwrites.
    pub fn assign(&mut self, tag: &str, concept: ConceptId) {
        assert!((concept.0 as usize) < self.parent.len(), "unknown concept");
        self.concept_of.insert(tag.into(), concept);
    }

    /// Number of concepts (including the root).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the taxonomy holds only the root.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Depth of a concept (root = 1).
    pub fn depth_of(&self, c: ConceptId) -> u32 {
        self.depth[c.0 as usize]
    }

    /// Lowest common ancestor of two concepts.
    pub fn lca(&self, a: ConceptId, b: ConceptId) -> ConceptId {
        let (mut x, mut y) = (a.0 as usize, b.0 as usize);
        while self.depth[x] > self.depth[y] {
            x = self.parent[x] as usize;
        }
        while self.depth[y] > self.depth[x] {
            y = self.parent[y] as usize;
        }
        while x != y {
            x = self.parent[x] as usize;
            y = self.parent[y] as usize;
        }
        ConceptId(x as u32)
    }

    /// Wu–Palmer similarity between two concepts, in `(0, 1]`.
    pub fn wu_palmer(&self, a: ConceptId, b: ConceptId) -> f64 {
        let lca = self.lca(a, b);
        let da = f64::from(self.depth_of(a));
        let db = f64::from(self.depth_of(b));
        2.0 * f64::from(self.depth_of(lca)) / (da + db)
    }

    /// Compiles a matcher against `interner`'s tag vocabulary. Unassigned
    /// tags (and symbols interned after this call) fall back to exact
    /// matching.
    pub fn matcher(&self, interner: &Interner) -> TaxonomyMatcher {
        let mut concept_of_symbol = FxHashMap::default();
        for index in 0..interner.len() {
            let sym = Symbol(index as u32);
            if let Some(&concept) = self.concept_of.get(interner.resolve(sym)) {
                concept_of_symbol.insert(sym, concept);
            }
        }
        TaxonomyMatcher {
            taxonomy: self.clone(),
            concept_of_symbol,
        }
    }
}

/// A compiled taxonomy matcher: `Δ(a, b)` is the Wu–Palmer similarity of
/// the concepts the tags denote, `1` for identical tags, `0` when either
/// tag is unassigned (unless identical).
#[derive(Debug, Clone)]
pub struct TaxonomyMatcher {
    taxonomy: Taxonomy,
    concept_of_symbol: FxHashMap<Symbol, ConceptId>,
}

impl TaxonomyMatcher {
    /// The graded match (exposed for tests and diagnostics).
    #[inline]
    pub fn delta_of(&self, a: Symbol, b: Symbol) -> f64 {
        if a == b {
            return 1.0;
        }
        match (
            self.concept_of_symbol.get(&a),
            self.concept_of_symbol.get(&b),
        ) {
            (Some(&ca), Some(&cb)) => {
                if ca == cb {
                    1.0
                } else {
                    let wup = self.taxonomy.wu_palmer(ca, cb);
                    if wup < self.taxonomy.floor {
                        0.0
                    } else {
                        wup
                    }
                }
            }
            _ => 0.0,
        }
    }
}

impl TagMatcher for TaxonomyMatcher {
    #[inline]
    fn delta(&self, a: Symbol, b: Symbol) -> f64 {
        self.delta_of(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// publication ─┬─ serial ─┬─ journal-family (journal, periodical)
    ///              │          └─ magazine-family (magazine)
    ///              └─ event   ── proceedings-family (booktitle, venue)
    fn publication_taxonomy() -> Taxonomy {
        let mut t = Taxonomy::with_root("publication");
        let serial = t.add_concept("serial", t.root());
        let event = t.add_concept("event", t.root());
        let journal = t.add_concept("journal-family", serial);
        let magazine = t.add_concept("magazine-family", serial);
        let proceedings = t.add_concept("proceedings-family", event);
        t.assign("journal", journal);
        t.assign("periodical", journal);
        t.assign("magazine", magazine);
        t.assign("booktitle", proceedings);
        t.assign("venue", proceedings);
        t
    }

    #[test]
    fn same_concept_tags_match_fully() {
        let t = publication_taxonomy();
        let mut interner = Interner::new();
        let journal = interner.intern("journal");
        let periodical = interner.intern("periodical");
        let m = t.matcher(&interner);
        assert_eq!(m.delta_of(journal, periodical), 1.0);
    }

    #[test]
    fn sibling_concepts_score_wu_palmer() {
        let t = publication_taxonomy();
        let mut interner = Interner::new();
        let journal = interner.intern("journal");
        let magazine = interner.intern("magazine");
        let m = t.matcher(&interner);
        // journal-family and magazine-family: depth 3 each, lca `serial`
        // at depth 2 -> 2·2/(3+3) = 2/3.
        assert!((m.delta_of(journal, magazine) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn distant_concepts_score_through_the_root() {
        let t = publication_taxonomy();
        let mut interner = Interner::new();
        let journal = interner.intern("journal");
        let venue = interner.intern("venue");
        let m = t.matcher(&interner);
        // lca is the root (depth 1): 2·1/(3+3) = 1/3.
        assert!((m.delta_of(journal, venue) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unassigned_tags_fall_back_to_exact() {
        let t = publication_taxonomy();
        let mut interner = Interner::new();
        let journal = interner.intern("journal");
        let author = interner.intern("author");
        let m = t.matcher(&interner);
        assert_eq!(m.delta_of(author, author), 1.0);
        assert_eq!(m.delta_of(author, journal), 0.0);
    }

    #[test]
    fn lca_handles_unbalanced_depths() {
        let mut t = Taxonomy::with_root("r");
        let a = t.add_concept("a", t.root());
        let b = t.add_concept("b", a);
        let c = t.add_concept("c", b);
        let d = t.add_concept("d", t.root());
        assert_eq!(t.lca(c, a), a);
        assert_eq!(t.lca(c, d), t.root());
        assert_eq!(t.lca(c, c), c);
        assert_eq!(t.depth_of(c), 4);
        // wup(c, a): lca a at depth 2 -> 2·2/(4+2) = 2/3.
        assert!((t.wu_palmer(c, a) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wu_palmer_is_reflexive_and_symmetric() {
        let t = publication_taxonomy();
        let serial = t.concept("serial").unwrap();
        let event = t.concept("event").unwrap();
        assert_eq!(t.wu_palmer(serial, serial), 1.0);
        assert_eq!(t.wu_palmer(serial, event), t.wu_palmer(event, serial));
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn duplicate_concept_names_are_rejected() {
        let mut t = Taxonomy::with_root("r");
        t.add_concept("x", t.root());
        t.add_concept("x", t.root());
    }

    #[test]
    fn floor_clamps_weak_relatedness() {
        let t = publication_taxonomy().with_floor(0.5);
        let mut interner = Interner::new();
        let journal = interner.intern("journal");
        let magazine = interner.intern("magazine");
        let venue = interner.intern("venue");
        let m = t.matcher(&interner);
        // Siblings at 2/3 survive the floor; root-only relatedness (1/3)
        // is clamped to zero.
        assert!((m.delta_of(journal, magazine) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.delta_of(journal, venue), 0.0);
    }

    #[test]
    #[should_panic(expected = "floor must be in [0,1]")]
    fn rejects_out_of_range_floor() {
        let _ = Taxonomy::with_root("r").with_floor(-0.1);
    }
}
