//! Semantic tag matching — the paper's named future work (§4.1.1, §6).
//!
//! The paper computes structural similarity (Eq. 3) with the Dirichlet
//! exact-match function `Δ` and remarks that "information on structural
//! similarity could be semantically enriched with the support of a
//! knowledge base, like in our previous works" (Tagarelli & Greco, TOIS
//! 2010, reference \[33\]). This crate supplies that enrichment as two
//! knowledge-base substrates, each exposed as a
//! [`cxk_transact::TagMatcher`] that plugs straight into the similarity
//! pipeline via [`cxk_transact::Dataset::rebuild_tag_sim`]:
//!
//! * [`Thesaurus`] / [`SynonymMatcher`] — synonym rings over tag names
//!   (`author ≈ creator ≈ writer`), graded by a configurable ring score.
//! * [`Taxonomy`] / [`TaxonomyMatcher`] — an is-a concept hierarchy with
//!   Wu–Palmer similarity between the concepts two tags denote.
//! * [`bibliographic_thesaurus`] — a built-in thesaurus for the
//!   bibliographic markup dialects emitted by `cxk_corpus`, used by the
//!   semantic ablation harness.
//!
//! Why this matters: the motivating scenario in the paper's introduction
//! is peers sharing the *same logical information under different markup
//! vocabularies* (text-centric `review` vs. data-centric `reviews.…`).
//! Exact matching splits such sources into per-dialect clusters; a synonym
//! ring or shared hypernym re-unifies them without touching the content
//! side of Eq. (1).
//!
//! # Example
//!
//! ```
//! use cxk_semantic::Thesaurus;
//! use cxk_transact::{tag_path_similarity, tag_path_similarity_with};
//! use cxk_util::Interner;
//!
//! let mut interner = Interner::new();
//! let catalog = interner.intern("catalog");
//! let author = interner.intern("author");
//! let creator = interner.intern("creator");
//!
//! let mut thesaurus = Thesaurus::new();
//! thesaurus.add_ring(&["author", "creator", "writer"]);
//! let matcher = thesaurus.matcher(&interner);
//!
//! let p1 = [catalog, author];
//! let p2 = [catalog, creator];
//! assert_eq!(tag_path_similarity(&p1, &p2), 0.5);               // exact Δ
//! assert_eq!(tag_path_similarity_with(&p1, &p2, &matcher), 1.0); // semantic Δ
//! ```

#![warn(missing_docs)]

pub mod taxonomy;
pub mod thesaurus;

pub use taxonomy::{Taxonomy, TaxonomyMatcher};
pub use thesaurus::{SynonymMatcher, Thesaurus};

/// A built-in thesaurus covering the bibliographic markup dialects of
/// `cxk_corpus` (and common DBLP-style variants): one ring per logical
/// field. Ring members are matched case-sensitively as whole tag names.
pub fn bibliographic_thesaurus() -> Thesaurus {
    let mut t = Thesaurus::new();
    t.add_ring(&["author", "creator", "writer", "contributor"]);
    t.add_ring(&["title", "name", "heading"]);
    t.add_ring(&["year", "date", "published"]);
    t.add_ring(&["pages", "pp", "extent"]);
    t.add_ring(&["journal", "periodical", "magazine"]);
    t.add_ring(&["booktitle", "venue", "proceedings"]);
    t.add_ring(&["publisher", "press", "imprint"]);
    t.add_ring(&["article", "paper", "manuscript"]);
    t.add_ring(&["inproceedings", "conferencepaper", "confpaper"]);
    t.add_ring(&["book", "monograph", "textbook"]);
    t.add_ring(&["incollection", "chapter", "bookpart"]);
    t.add_ring(&["url", "link", "href"]);
    t.add_ring(&["volume", "vol", "tome"]);
    t.add_ring(&["number", "issue", "no"]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_util::Interner;

    #[test]
    fn builtin_thesaurus_rings_are_disjoint() {
        let t = bibliographic_thesaurus();
        // Building a matcher over a vocabulary containing every member
        // must succeed (add_ring panics on overlap, so this is implicit),
        // and synonyms must match.
        let mut interner = Interner::new();
        let author = interner.intern("author");
        let creator = interner.intern("creator");
        let title = interner.intern("title");
        let m = t.matcher(&interner);
        assert_eq!(m.delta_of(author, creator), 1.0);
        assert_eq!(m.delta_of(author, title), 0.0);
    }
}
