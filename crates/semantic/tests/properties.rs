//! Property-based tests for the semantic matchers: the `TagMatcher`
//! contract (symmetry, reflexivity, unit range) must hold for arbitrary
//! thesauri and taxonomies, and Eq. (3) must stay well-behaved under any
//! graded Δ.

use cxk_semantic::{Taxonomy, Thesaurus};
use cxk_transact::{tag_path_similarity, tag_path_similarity_with, TagMatcher};
use cxk_util::{Interner, Symbol};
use proptest::prelude::*;

/// A pool of tag names the generators draw from.
const NAMES: [&str; 12] = [
    "author", "creator", "writer", "title", "name", "heading", "year", "date", "pages", "pp",
    "journal", "venue",
];

fn interner_with_names() -> Interner {
    let mut interner = Interner::new();
    for n in NAMES {
        interner.intern(n);
    }
    interner
}

/// Random disjoint rings over the name pool: a partition assignment per
/// name (group 0 = no ring).
fn ring_assignment() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, NAMES.len())
}

fn build_thesaurus(groups: &[u8], score: f64) -> Thesaurus {
    let mut thesaurus = Thesaurus::new().with_ring_score(score);
    for g in 1..4u8 {
        let members: Vec<&str> = NAMES
            .iter()
            .zip(groups)
            .filter(|(_, &gg)| gg == g)
            .map(|(&n, _)| n)
            .collect();
        if !members.is_empty() {
            thesaurus.add_ring(&members);
        }
    }
    thesaurus
}

/// Random taxonomy: each name gets a concept chain of random depth.
fn depth_assignment() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..5, NAMES.len())
}

fn build_taxonomy(depths: &[u8], floor: f64) -> Taxonomy {
    let mut taxonomy = Taxonomy::with_root("root").with_floor(floor);
    for (i, (&name, &depth)) in NAMES.iter().zip(depths).enumerate() {
        let mut parent = taxonomy.root();
        for level in 0..depth {
            parent = taxonomy.add_concept(&format!("c{i}-{level}"), parent);
        }
        taxonomy.assign(name, parent);
    }
    taxonomy
}

fn symbols(interner: &Interner) -> Vec<Symbol> {
    (0..interner.len()).map(|i| Symbol(i as u32)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synonym_delta_is_symmetric_reflexive_unit(
        groups in ring_assignment(),
        score in 0.0f64..=1.0,
    ) {
        let interner = interner_with_names();
        let matcher = build_thesaurus(&groups, score).matcher(&interner);
        let syms = symbols(&interner);
        for &a in &syms {
            prop_assert_eq!(matcher.delta(a, a), 1.0);
            for &b in &syms {
                let ab = matcher.delta(a, b);
                prop_assert_eq!(ab, matcher.delta(b, a));
                prop_assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn taxonomy_delta_is_symmetric_reflexive_unit(
        depths in depth_assignment(),
        floor in 0.0f64..=1.0,
    ) {
        let interner = interner_with_names();
        let matcher = build_taxonomy(&depths, floor).matcher(&interner);
        let syms = symbols(&interner);
        for &a in &syms {
            prop_assert_eq!(matcher.delta(a, a), 1.0);
            for &b in &syms {
                let ab = matcher.delta(a, b);
                prop_assert_eq!(ab, matcher.delta(b, a));
                prop_assert!((0.0..=1.0).contains(&ab));
            }
        }
    }

    #[test]
    fn graded_path_similarity_stays_in_unit_interval_and_dominates_exact(
        groups in ring_assignment(),
        p1 in proptest::collection::vec(0usize..NAMES.len(), 1..5),
        p2 in proptest::collection::vec(0usize..NAMES.len(), 1..5),
    ) {
        let interner = interner_with_names();
        let matcher = build_thesaurus(&groups, 1.0).matcher(&interner);
        let path1: Vec<Symbol> = p1.iter().map(|&i| Symbol(i as u32)).collect();
        let path2: Vec<Symbol> = p2.iter().map(|&i| Symbol(i as u32)).collect();
        let graded = tag_path_similarity_with(&path1, &path2, &matcher);
        let exact = tag_path_similarity(&path1, &path2);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&graded));
        // A full-score synonym matcher's Δ dominates the Dirichlet Δ
        // pointwise, and Eq. (3) is monotone in Δ.
        prop_assert!(graded >= exact - 1e-12);
        // Symmetry is preserved under any matcher.
        let flipped = tag_path_similarity_with(&path2, &path1, &matcher);
        prop_assert!((graded - flipped).abs() < 1e-12);
    }

    #[test]
    fn taxonomy_floor_only_removes_weak_matches(
        depths in depth_assignment(),
    ) {
        let interner = interner_with_names();
        let unfloored = build_taxonomy(&depths, 0.0).matcher(&interner);
        let floored = build_taxonomy(&depths, 0.6).matcher(&interner);
        let syms = symbols(&interner);
        for &a in &syms {
            for &b in &syms {
                let lo = floored.delta(a, b);
                let hi = unfloored.delta(a, b);
                if lo > 0.0 {
                    prop_assert!((lo - hi).abs() < 1e-12, "floor must not change surviving scores");
                    prop_assert!(lo >= 0.6 - 1e-12);
                } else {
                    prop_assert!(hi < 0.6 || a == b);
                }
            }
        }
    }
}
