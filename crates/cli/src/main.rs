//! `cxk` — cluster XML documents from the command line.
//!
//! ```text
//! cxk build  doc1.xml doc2.xml … -o dataset.cxkds   # preprocess and save
//! cxk info   dataset.cxkds                          # corpus statistics
//! cxk cluster dataset.cxkds --k 4 --f 0.5 --gamma 0.7 --m 3
//! cxk cluster docs/ --k 8                           # directly from XML
//! cxk synth  --corpus dblp --docs 1000000 -o corpus.xml  # stream a corpus to disk
//! cxk train  docs/ --k 4 -o model.cxkmodel          # cluster + snapshot
//! cxk train  corpus.xml --stream --k 4 -o model.cxkmodel # bounded-memory ingest
//! cxk classify model.cxkmodel new-doc.xml           # assign new documents
//! cxk serve  model.cxkmodel --port 7070 --threads 8 # classification server
//! cxk serve  model.cxkmodel --watch 30              # …with hot reload on change
//! ```
//!
//! `build`/`cluster`/`train` accept XML file paths and directories (scanned
//! for `*.xml`); `info`, `cluster` and `train` also accept a saved
//! `.cxkds` dataset. Clustering prints one
//! `transaction ⟨TAB⟩ document ⟨TAB⟩ cluster` row per transaction (cluster
//! `trash` is the `(k+1)`-th cluster of the paper) followed by a
//! `#`-prefixed summary. `classify --jsonl` prints one JSON object per
//! document for bulk-scoring pipelines. Everywhere an output path is
//! taken, `-o` and `--out` are interchangeable.
//!
//! Training commands run through `cxk_core`'s Engine API: invalid flags
//! and flag combinations (`--k 0`, `--gamma 2`, `--algorithm vsm --m 3`)
//! come back as `cxk: --flag: reason` messages with exit code 1, never as
//! panics.

mod commands;
mod flags;

use std::process::ExitCode;

const USAGE: &str = "\
usage: cxk <command> [args]   (cxk --help | cxk --version)

commands:
  build    <xml-file|dir>... -o <out.cxkds>    preprocess XML into a dataset
  info     <dataset.cxkds | xml-file|dir>...   print corpus statistics
  cluster  <dataset.cxkds | xml-file|dir>...   cluster transactions
           [--k N] [--f 0.5] [--gamma 0.7] [--m 1] [--seed 0]
           [--algorithm cxk|pk|vsm] [--quiet]
  assign   --base <xml-file|dir> --new <xml-file|dir>
           [--k N] [--f 0.5] [--gamma 0.7] [--seed 0]
           assign arriving documents to a base clustering
  synth    --corpus dblp|ieee|wikipedia --docs N -o <corpus.xml>
           [--seed S] [--dialects D] [--labels <out.tsv>]
           stream a synthetic newline-delimited XML corpus to disk
           (one document per line, constant memory; --labels mirrors
           the ground-truth classes to a TSV side file)
  train    <dataset.cxkds | xml-file|dir>... -o <model.cxkmodel>
           [--k N] [--f 0.5] [--gamma 0.7] [--m 1] [--seed 0] [--stream]
           cluster and snapshot a servable model; --stream ingests
           newline-delimited corpus files through the streaming SAX
           extractor (peak memory independent of corpus size)
  classify <model.cxkmodel> <xml-file|dir>... [--brute] [--jsonl] [--stream]
           assign new documents to a trained model's clusters
           (--jsonl prints one JSON object per document; --stream
           classifies newline-delimited corpus files line by line)
  serve    <model.cxkmodel> [--port 7070] [--threads 4] [--shards S]
           [--remote-shards a1,a2,…] [--replicas r1|r1b,-,…]
           [--remote-deadline-ms 2000] [--brute] [--watch SECS]
           [--queue-depth 256] [--keep-alive 30]
           run the HTTP classification server (POST /classify);
           --shards partitions the representatives across S shards
           sharing one scatter/gather index per model epoch (same
           assignments, memory constant in --threads);
           --remote-shards instead scatters every classification to
           shard daemons (see shard-serve) listed in ascending range
           order — --replicas names failover alternates per shard
           (`-` = none, `|` separates several) and
           --remote-deadline-ms bounds each shard's answer;
           POST /reload (or --watch) hot-swaps a retrained snapshot
           into the running workers without dropping requests;
           connections are keep-alive by default (--keep-alive SECS
           sets the idle horizon, 0 disables reuse) and requests
           beyond --queue-depth are shed with 503 + Retry-After
  shard-serve --model <model.cxkmodel> --range A..B --listen ADDR
           run one shard daemon: serve representatives A..B (half-open,
           a sub-range of 0..k) over the cxk_p2p framed-TCP fabric for
           a `serve --remote-shards` frontend to scatter to

`-o` and `--out` are interchangeable wherever an output path is taken.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("cxk: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Err(format!("missing command\n{USAGE}"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "build" => commands::build(rest),
        "info" => commands::info(rest),
        "cluster" => commands::cluster(rest),
        "assign" => commands::assign(rest),
        "synth" => commands::synth(rest),
        "train" => commands::train(rest),
        "classify" => commands::classify(rest),
        "serve" => commands::serve(rest),
        "shard-serve" => commands::shard_serve(rest),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "version" | "--version" | "-V" => Ok(format!("cxk {}\n", env!("CARGO_PKG_VERSION"))),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).expect("help works");
        assert!(out.contains("usage: cxk"));
    }

    #[test]
    fn missing_command_errors() {
        assert!(run(&[]).is_err());
    }

    #[test]
    fn unknown_command_errors() {
        let e = run(&args(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn top_level_help_and_version() {
        for spelling in ["--help", "-h", "help"] {
            let out = run(&args(&[spelling])).expect("help works");
            assert!(out.contains("usage: cxk"), "{spelling}: {out}");
            assert!(out.contains("train"), "{spelling} lists train: {out}");
            assert!(out.contains("serve"), "{spelling} lists serve: {out}");
        }
        for spelling in ["--version", "-V", "version"] {
            let out = run(&args(&[spelling])).expect("version works");
            assert_eq!(out, format!("cxk {}\n", env!("CARGO_PKG_VERSION")));
        }
    }
}
