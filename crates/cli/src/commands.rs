//! The `build` / `info` / `cluster` / `assign` / `train` / `classify` /
//! `serve` / `synth` command implementations.
//!
//! Commands return their stdout as a `String` (and errors as `String`) so
//! unit tests drive them directly without spawning processes. The one
//! exception is [`serve`], which runs a foreground server and only returns
//! on failure.

use crate::flags::Parsed;
use cxk_core::{
    load_model_file, save_model_file, Algorithm, Backend, CxkError, EngineBuilder, TrainedModel,
};
use cxk_corpus::{synthesize_to, CorpusStream, SynthSpec};
use cxk_serve::{
    assignment_json, json_escape, Classifier, ServeOptions, Server, ShardDaemon, TreeConfig,
};
use cxk_transact::{
    load_dataset, save_dataset, BuildOptions, Dataset, DatasetBuilder, IngestStats, SimParams,
};
use std::fmt::Write as _;
use std::io::BufRead as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Renders a [`CxkError`] as a CLI message, mapping engine configuration
/// fields back onto the flags that set them so the user sees `--k`, `--m`,
/// `--gamma`, … instead of internal field names. Commands print these to
/// stderr and exit with code 1 — typed errors, never panics.
fn cli_error(e: CxkError) -> String {
    match e {
        CxkError::Config { field, message } => {
            let flag = match field {
                "peers" => "m",
                "backend" => "algorithm",
                other => other,
            };
            format!("--{flag}: {message}")
        }
        other => other.to_string(),
    }
}

/// Builds the engine every training-flavored command shares: `--k`, `--f`,
/// `--gamma`, `--m`, `--seed`, `--algorithm` are validated together and
/// reported as flag errors.
fn engine_from_flags(parsed: &Parsed) -> Result<cxk_core::Engine, String> {
    let k: usize = parsed.get("k", 2)?;
    let f: f64 = parsed.get("f", 0.5)?;
    let gamma: f64 = parsed.get("gamma", 0.7)?;
    let m: usize = parsed.get("m", 1)?;
    let seed: u64 = parsed.get("seed", 0)?;
    let algorithm = match parsed.get_str("algorithm").unwrap_or("cxk") {
        "cxk" => Algorithm::CxkMeans,
        "pk" => Algorithm::PkMeans,
        "vsm" => Algorithm::VsmKmeans,
        other => return Err(format!("unknown algorithm `{other}` (cxk|pk|vsm)")),
    };
    let backend = if m == 1 {
        Backend::Centralized
    } else {
        Backend::SimulatedP2p { peers: m }
    };
    let mut builder = EngineBuilder::new(k)
        .algorithm(algorithm)
        .backend(backend)
        .similarity(f, gamma)
        .seed(seed);
    if algorithm == Algorithm::VsmKmeans {
        // The VSM baseline has always run with its own (higher) round cap.
        builder = builder.max_rounds(50);
    }
    builder.build().map_err(cli_error)
}

/// `cxk build <inputs>... -o <out.cxkds>`.
pub fn build(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let out_path = parsed.output().ok_or("build needs -o <out.cxkds>")?;
    let ds = dataset_from_xml_inputs(parsed.positional())?;
    std::fs::write(out_path, save_dataset(&ds))
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    Ok(format!(
        "wrote {out_path}: {} documents, {} transactions, {} items\n",
        ds.stats.documents, ds.stats.transactions, ds.stats.items
    ))
}

/// `cxk info <dataset.cxkds | xml inputs>...`.
pub fn info(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let ds = dataset_from_any_inputs(parsed.positional())?;
    let s = &ds.stats;
    let mut out = String::new();
    let _ = writeln!(out, "documents            {}", s.documents);
    let _ = writeln!(out, "transactions         {}", s.transactions);
    let _ = writeln!(out, "distinct items       {}", s.items);
    let _ = writeln!(out, "vocabulary |V|       {}", s.vocabulary);
    let _ = writeln!(out, "complete paths       {}", s.complete_paths);
    let _ = writeln!(out, "tag paths            {}", s.tag_paths);
    let _ = writeln!(out, "max transaction len  {}", s.max_transaction_len);
    let _ = writeln!(out, "max TCU nnz          {}", s.max_tcu_nnz);
    let _ = writeln!(out, "total TCUs (N_T)     {}", s.total_tcus);
    let _ = writeln!(out, "max tree depth       {}", s.max_depth);
    Ok(out)
}

/// `cxk cluster <inputs>... [--k N] [--f F] [--gamma G] [--m M] [--seed S]
/// [--algorithm cxk|pk|vsm] [--quiet]`.
pub fn cluster(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let ds = dataset_from_any_inputs(parsed.positional())?;
    if ds.transactions.is_empty() {
        return Err("nothing to cluster: the input has no transactions".into());
    }
    let engine = engine_from_flags(&parsed)?;
    let outcome = engine.fit(&ds).map_err(cli_error)?;
    let config = engine.config();
    let (k, m) = (config.k, engine.backend().peers());
    let (f, gamma) = (config.params.f, config.params.gamma);

    let mut out = String::new();
    if !parsed.has("quiet") {
        for (t, &a) in outcome.assignments.iter().enumerate() {
            let cluster = if a as usize == k {
                "trash".to_string()
            } else {
                a.to_string()
            };
            let _ = writeln!(out, "{t}\t{}\t{cluster}", ds.doc_of[t]);
        }
    }
    let sizes = outcome.cluster_sizes();
    let _ = writeln!(
        out,
        "# algorithm={} k={k} m={m} f={f} gamma={gamma} rounds={} converged={}",
        engine.algorithm().name(),
        outcome.rounds,
        outcome.converged
    );
    let _ = writeln!(
        out,
        "# sizes={:?} trash={} simulated_seconds={:.6}",
        &sizes[..k],
        sizes[k],
        outcome.simulated_seconds
    );
    Ok(out)
}

/// `cxk assign --base <inputs> --new <inputs> [--k N] [--f F] [--gamma G]
/// [--seed S]` — bootstrap a streaming clusterer on the base corpus and
/// fold the new documents in, printing each arrival's clusters.
pub fn assign(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let base_input = parsed
        .get_str("base")
        .ok_or("assign needs --base <inputs>")?;
    let new_input = parsed.get_str("new").ok_or("assign needs --new <inputs>")?;
    let k: usize = parsed.get("k", 2)?;
    let f: f64 = parsed.get("f", 0.5)?;
    let gamma: f64 = parsed.get("gamma", 0.7)?;
    let seed: u64 = parsed.get("seed", 0)?;
    if k == 0 {
        return Err("--k must be at least 1".into());
    }
    if !(0.0..=1.0).contains(&f) || !(0.0..=1.0).contains(&gamma) {
        return Err("--f and --gamma must lie in [0, 1]".into());
    }

    let read_all = |input: &str| -> Result<Vec<(PathBuf, String)>, String> {
        let files = expand_inputs(&[input.to_string()])?;
        files
            .into_iter()
            .map(|file| {
                std::fs::read_to_string(&file)
                    .map(|text| (file.clone(), text))
                    .map_err(|e| format!("cannot read {}: {e}", file.display()))
            })
            .collect()
    };
    let base = read_all(base_input)?;
    let arrivals = read_all(new_input)?;
    if base.is_empty() {
        return Err("no base XML files".into());
    }

    let mut opts = cxk_stream::StreamOptions::new(k);
    opts.config.params = SimParams::new(f, gamma);
    opts.config.seed = seed;
    opts.policy = cxk_stream::RefreshPolicy::manual();
    let base_refs: Vec<&str> = base.iter().map(|(_, text)| text.as_str()).collect();
    let mut clusterer = cxk_stream::StreamClusterer::new(&base_refs, opts)
        .map_err(|e| format!("base corpus: {e}"))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# base: {} documents, {} transactions, k = {k}",
        clusterer.document_count(),
        clusterer.dataset().stats.transactions
    );
    for (file, text) in &arrivals {
        let report = clusterer
            .push(text)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        let clusters: Vec<String> = report
            .assignments
            .iter()
            .map(|&a| {
                if a as usize == k {
                    "trash".to_string()
                } else {
                    a.to_string()
                }
            })
            .collect();
        let _ = writeln!(out, "{}\t{}", file.display(), clusters.join(","));
    }
    Ok(out)
}

/// `cxk synth --corpus dblp|ieee|wikipedia --docs N -o <corpus.xml>
/// [--seed S] [--dialects D] [--labels <out.tsv>]` — stream a synthetic
/// newline-delimited XML corpus to disk: one single-line document per
/// line, with only one document resident at a time, so
/// `--docs 1000000` runs in constant memory. `--labels` mirrors the
/// ground-truth classes to a TSV side file
/// (`doc_index<TAB>structure<TAB>content<TAB>hybrid`).
pub fn synth(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    if let Some(stray) = parsed.positional().first() {
        return Err(format!(
            "synth takes no positional arguments (got `{stray}`); use --corpus/--docs/-o"
        ));
    }
    let out_path = parsed.output().ok_or("synth needs -o <corpus.xml>")?;
    let docs: usize = parsed.get("docs", 0)?;
    if docs == 0 {
        return Err("synth needs --docs N (at least 1)".into());
    }
    let spec = SynthSpec {
        corpus: parsed.get_str("corpus").unwrap_or("dblp").to_string(),
        docs,
        seed: match parsed.get_str("seed") {
            None => None,
            Some(_) => Some(parsed.get("seed", 0u64)?),
        },
        dialects: match parsed.get_str("dialects") {
            None => None,
            Some(_) => Some(parsed.get("dialects", 0usize)?),
        },
    };
    let mut stream = CorpusStream::from_spec(&spec)?;
    let xml_out = std::io::BufWriter::new(
        std::fs::File::create(out_path).map_err(|e| format!("cannot write {out_path}: {e}"))?,
    );
    let mut labels_out = match parsed.get_str("labels") {
        None => None,
        Some(path) => Some(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("cannot write {path}: {e}"))?,
        )),
    };
    let summary = synthesize_to(
        xml_out,
        labels_out.as_mut().map(|w| w as &mut dyn std::io::Write),
        &mut stream,
    )
    .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let labels_note = parsed
        .get_str("labels")
        .map(|path| format!(", labels to {path}"))
        .unwrap_or_default();
    Ok(format!(
        "wrote {out_path}: {} {} documents, {} bytes{labels_note}\n",
        summary.documents, spec.corpus, summary.xml_bytes
    ))
}

/// `cxk train <inputs>... --k N [--f F] [--gamma G] [--m M] [--seed S]
/// [--stream] -o <model.cxkmodel>` — cluster the corpus and snapshot the
/// servable model (representatives + frozen preprocessing context). With
/// `--stream`, the inputs are newline-delimited corpus files ingested
/// through the SAX tuple extractor: no document ever materializes as a
/// DOM tree, so peak memory is bounded by document size, not corpus size.
pub fn train(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let out_path = parsed.output().ok_or("train needs -o <model.cxkmodel>")?;
    let (ds, ingest) = if parsed.has("stream") {
        let (ds, stats) = dataset_from_corpus_streams(parsed.positional())?;
        (ds, Some(stats))
    } else {
        (dataset_from_any_inputs(parsed.positional())?, None)
    };
    if ds.transactions.is_empty() {
        return Err("nothing to train on: the input has no transactions".into());
    }
    let engine = engine_from_flags(&parsed)?;
    let fit = engine.fit(&ds).map_err(cli_error)?;
    let config = engine.config();
    let (k, m) = (config.k, engine.backend().peers());
    let (f, gamma) = (config.params.f, config.params.gamma);
    let (rounds, converged) = (fit.rounds, fit.converged);
    let sizes = fit.cluster_sizes();
    let model = fit.into_model(&ds, BuildOptions::default());
    let bytes = save_model_file(&model, out_path).map_err(cli_error)?;

    let mut out = String::new();
    if let Some(stats) = ingest {
        let _ = writeln!(
            out,
            "streamed {} documents ({} tree tuples, {} capped) in one bounded-memory pass",
            stats.documents, stats.tuples, stats.capped_documents
        );
    }
    let _ = writeln!(
        out,
        "trained k={k} m={m} f={f} gamma={gamma} rounds={rounds} converged={converged}"
    );
    let _ = writeln!(out, "sizes={:?} trash={}", &sizes[..k], sizes[k]);
    let _ = writeln!(
        out,
        "wrote {out_path}: {bytes} bytes, {} representatives over {} documents",
        model.k(),
        model.trained_documents
    );
    Ok(out)
}

/// `cxk classify <model.cxkmodel> <inputs>... [--brute] [--jsonl]
/// [--stream]` — assign each XML document to a trained model's cluster.
/// Prints one `file ⟨TAB⟩ cluster ⟨TAB⟩ score` row per document, or —
/// with `--jsonl` — one JSON object per line (`file`, `cluster`, `trash`,
/// `capped`, `score`, `tuples`), the bulk-scoring format that pairs with
/// the server's batch `POST /classify`. With `--stream`, each input is a
/// newline-delimited corpus file classified line by line (rows are
/// labeled `file:line`), so a million-document corpus scores in bounded
/// memory; a trailing `#` summary reports how many documents hit the
/// tree-tuple cap.
pub fn classify(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let (model_path, inputs) = parsed
        .positional()
        .split_first()
        .ok_or("classify needs <model.cxkmodel> and XML inputs")?;
    let model = read_model(model_path)?;
    let trash = model.trash_id();
    let mut classifier = Classifier::new(model);
    let files = expand_inputs(inputs)?;
    if files.is_empty() {
        return Err("no input XML files".into());
    }
    let brute = parsed.has("brute");
    let jsonl = parsed.has("jsonl");

    if parsed.has("stream") {
        return classify_stream(&mut classifier, &files, trash, brute, jsonl);
    }

    let mut out = String::new();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let report = if brute {
            classifier.classify_brute(&text)
        } else {
            classifier.classify(&text)
        }
        .map_err(|e| format!("{}: {e}", file.display()))?;
        if jsonl {
            // One object per line: a `file` field spliced onto the exact
            // assignment JSON the server's /classify endpoint answers
            // with, so bulk pipelines can consume either surface.
            let assignment = assignment_json(&report, trash);
            let _ = writeln!(
                out,
                r#"{{"file":"{}",{}"#,
                json_escape(&file.display().to_string()),
                &assignment[1..]
            );
        } else {
            let cluster = if report.cluster == trash {
                "trash".to_string()
            } else {
                report.cluster.to_string()
            };
            let _ = writeln!(out, "{}\t{cluster}\t{:.6}", file.display(), report.score);
        }
    }
    Ok(out)
}

/// The `--stream` arm of [`classify`]: one document per corpus line,
/// classified as it is read — only the current line is ever resident.
fn classify_stream(
    classifier: &mut Classifier,
    files: &[PathBuf],
    trash: u32,
    brute: bool,
    jsonl: bool,
) -> Result<String, String> {
    let mut out = String::new();
    let mut documents = 0u64;
    let mut capped = 0u64;
    for file in files {
        let reader = std::io::BufReader::new(
            std::fs::File::open(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?,
        );
        for (idx, line) in reader.lines().enumerate() {
            let line = line.map_err(|e| format!("{}: {e}", file.display()))?;
            if line.trim().is_empty() {
                continue;
            }
            let label = format!("{}:{}", file.display(), idx + 1);
            let report = if brute {
                classifier.classify_brute(&line)
            } else {
                classifier.classify(&line)
            }
            .map_err(|e| format!("{label}: {e}"))?;
            documents += 1;
            if report.capped {
                capped += 1;
            }
            if jsonl {
                let assignment = assignment_json(&report, trash);
                let _ = writeln!(
                    out,
                    r#"{{"file":"{}",{}"#,
                    json_escape(&label),
                    &assignment[1..]
                );
            } else {
                let cluster = if report.cluster == trash {
                    "trash".to_string()
                } else {
                    report.cluster.to_string()
                };
                let _ = writeln!(out, "{label}\t{cluster}\t{:.6}", report.score);
            }
        }
    }
    if !jsonl {
        let _ = writeln!(out, "# documents={documents} capped={capped}");
    }
    Ok(out)
}

/// `cxk serve <model.cxkmodel> [--port P] [--threads T] [--shards S]
/// [--tree [--branch B] [--beam W]] [--brute] [--watch SECS]
/// [--queue-depth N] [--keep-alive SECS]` — run the classification
/// server in the foreground. With `--shards`, the representatives are
/// partitioned across `S` shards and the whole worker pool shares one
/// scatter/gather engine per model epoch (assignments are bit-identical
/// to the default replicated layout; memory no longer scales with
/// `--threads`). With `--tree`, each epoch publishes one shared
/// hierarchical representative tree (branching factor `--branch`,
/// default 8) and assignment descends it greedily keeping the top
/// `--beam` subtrees per level (default 2) before exactly re-ranking
/// the reached leaves — sublinear in k but approximate below full beam,
/// so it cannot be combined with the exact shard layouts. With
/// `--watch`, the snapshot file is polled every `SECS` seconds and
/// hot-swapped into the running worker pool when it changes;
/// `POST /reload` forces a swap at any time. `--queue-depth` bounds the
/// acceptor→worker request queue (overflow is shed with a `503`
/// carrying `Retry-After`); `--keep-alive` sets the idle horizon
/// for connection reuse, and `--keep-alive 0` disables reuse entirely
/// (one response per connection). Only returns on error.
pub fn serve(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    let [model_path] = parsed.positional() else {
        return Err("serve needs exactly one <model.cxkmodel>".into());
    };
    let port: u16 = parsed.get("port", 7070)?;
    let threads: usize = parsed.get("threads", 4)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let shards = match parsed.get_str("shards") {
        None => None,
        Some(_) => {
            let s: usize = parsed.get("shards", 0)?;
            if s == 0 {
                return Err("--shards must be at least 1".into());
            }
            Some(s)
        }
    };
    let remote_shards = remote_shards_from_flags(&parsed, shards.is_some())?;
    let tree = tree_from_flags(&parsed, shards.is_some(), !remote_shards.is_empty())?;
    let remote_deadline = match parsed.get_str("remote-deadline-ms") {
        None => ServeOptions::default().remote_deadline,
        Some(_) => {
            let ms: u64 = parsed.get("remote-deadline-ms", 0)?;
            if ms == 0 {
                return Err("--remote-deadline-ms must be at least 1".into());
            }
            std::time::Duration::from_millis(ms)
        }
    };
    let watch = match parsed.get_str("watch") {
        None => None,
        Some(_) => {
            let secs: u64 = parsed.get("watch", 0)?;
            if secs == 0 {
                return Err("--watch must be at least 1 second".into());
            }
            Some(std::time::Duration::from_secs(secs))
        }
    };
    let queue_depth: usize = parsed.get("queue-depth", ServeOptions::default().queue_depth)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    // `--keep-alive 0` is the documented way to disable connection reuse,
    // so 0 maps to `None` rather than being rejected.
    let keep_alive = match parsed.get_str("keep-alive") {
        None => ServeOptions::default().keep_alive,
        Some(_) => {
            let secs: u64 = parsed.get("keep-alive", 0)?;
            (secs > 0).then(|| std::time::Duration::from_secs(secs))
        }
    };
    let model = read_model(model_path)?;
    let remote_count = remote_shards.len();
    let opts = ServeOptions {
        threads,
        brute_force: parsed.has("brute"),
        shards,
        model_path: Some(PathBuf::from(model_path)),
        watch,
        queue_depth,
        keep_alive,
        remote_shards,
        remote_deadline,
        tree,
        ..ServeOptions::default()
    };
    let k = model.k();
    let layout = if remote_count > 0 {
        format!(", {remote_count} remote shards (scatter/gather over the cxk_p2p fabric)")
    } else {
        match (shards, tree) {
            (Some(s), _) => format!(", {s} shards (one shared index per epoch)"),
            (None, Some(cfg)) => format!(
                ", representative tree (branch {}, beam {})",
                cfg.branch, cfg.beam
            ),
            (None, None) => String::new(),
        }
    };
    let watching = match watch {
        Some(interval) => format!(", watching {model_path} every {}s", interval.as_secs()),
        None => String::new(),
    };
    let server = Server::start(model, ("127.0.0.1", port), opts)
        .map_err(|e| format!("cannot bind 127.0.0.1:{port}: {e}"))?;
    eprintln!(
        "cxk: serving k={k} model on http://{} with {threads} threads (POST /classify, POST /reload, GET /model, GET /stats){layout}{watching}",
        server.addr()
    );
    server.join();
    Ok(String::new())
}

/// `cxk shard-serve --model <model.cxkmodel> --range A..B --listen ADDR` —
/// run one shard daemon in the foreground: it loads the snapshot, builds
/// the postings slice for representatives `A..B` (half-open, must be a
/// sub-range of `0..k`), and answers scatter requests over the `cxk_p2p`
/// framed-TCP fabric. A frontend started with `cxk serve --remote-shards`
/// fans every classification out to a set of these daemons. Only returns
/// on error.
pub fn shard_serve(args: &[String]) -> Result<String, String> {
    let parsed = Parsed::parse(args)?;
    if let Some(stray) = parsed.positional().first() {
        return Err(format!(
            "shard-serve takes no positional arguments (got `{stray}`); use --model/--range/--listen"
        ));
    }
    let model_path = parsed
        .get_str("model")
        .ok_or("shard-serve needs --model <model.cxkmodel>")?;
    let range_raw = parsed
        .get_str("range")
        .ok_or("shard-serve needs --range A..B")?;
    let listen = parsed
        .get_str("listen")
        .ok_or("shard-serve needs --listen ADDR (e.g. 127.0.0.1:7271)")?;
    // The range's *shape* is validated before the model is even read; its
    // bounds are checked against the model's k right after.
    let range = parse_rep_range(range_raw)?;
    let model = read_model(model_path)?;
    let k = model.k();
    if range.start > range.end || range.end as usize > k {
        return Err(format!(
            "--range: {}..{} is not a sub-range of the model's representatives 0..{k}",
            range.start, range.end
        ));
    }
    let daemon = ShardDaemon::start(Arc::new(model), range.clone(), listen)
        .map_err(|e| format!("cannot listen on {listen}: {e}"))?;
    eprintln!(
        "cxk: shard daemon serving representatives {}..{} of k={k} on {} (cxk_p2p frames, not HTTP)",
        range.start,
        range.end,
        daemon.addr()
    );
    daemon.join();
    Ok(String::new())
}

/// Parses `A..B` into a half-open representative range.
fn parse_rep_range(raw: &str) -> Result<std::ops::Range<u32>, String> {
    let malformed = || format!("--range: cannot parse `{raw}` (expected A..B, e.g. 0..4)");
    let (a, b) = raw.split_once("..").ok_or_else(malformed)?;
    let start: u32 = a.parse().map_err(|_| malformed())?;
    let end: u32 = b.parse().map_err(|_| malformed())?;
    Ok(start..end)
}

/// Parses `--tree [--branch B] [--beam W]` into a [`TreeConfig`]. The
/// tree is approximate below full beam, so combining it with either
/// exact shard layout is rejected rather than silently resolved; the
/// shape knobs require `--tree` so a typo cannot pass unnoticed.
fn tree_from_flags(
    parsed: &Parsed,
    in_process_shards: bool,
    remote_shards: bool,
) -> Result<Option<TreeConfig>, String> {
    if !parsed.has("tree") {
        if parsed.get_str("branch").is_some() {
            return Err("--branch: requires --tree".into());
        }
        if parsed.get_str("beam").is_some() {
            return Err("--beam: requires --tree".into());
        }
        return Ok(None);
    }
    if in_process_shards {
        return Err("--tree: cannot be combined with --shards (pick one engine layout)".into());
    }
    if remote_shards {
        return Err(
            "--tree: cannot be combined with --remote-shards (pick one engine layout)".into(),
        );
    }
    let defaults = TreeConfig::default();
    let branch: usize = parsed.get("branch", defaults.branch)?;
    if branch < 2 {
        return Err("--branch must be at least 2".into());
    }
    let beam: usize = parsed.get("beam", defaults.beam)?;
    if beam == 0 {
        return Err("--beam must be at least 1".into());
    }
    Ok(Some(TreeConfig { branch, beam }))
}

/// Parses `--remote-shards addr1,addr2,…` plus the optional parallel
/// `--replicas` list into one replica set per shard slot. `--replicas`
/// must have exactly one comma-separated entry per remote shard: `-` for
/// no replica, or `addr` (with `|` separating several alternates). The
/// in-process and remote layouts are mutually exclusive.
fn remote_shards_from_flags(
    parsed: &Parsed,
    in_process_shards: bool,
) -> Result<Vec<Vec<String>>, String> {
    let Some(raw) = parsed.get_str("remote-shards") else {
        if parsed.get_str("replicas").is_some() {
            return Err("--replicas: requires --remote-shards".into());
        }
        return Ok(Vec::new());
    };
    if in_process_shards {
        return Err(
            "--remote-shards: cannot be combined with --shards (pick one shard layout)".into(),
        );
    }
    let mut sets: Vec<Vec<String>> = Vec::new();
    for addr in raw.split(',') {
        let addr = addr.trim();
        if addr.is_empty() {
            return Err(format!("--remote-shards: empty address in `{raw}`"));
        }
        sets.push(vec![addr.to_string()]);
    }
    if let Some(reps) = parsed.get_str("replicas") {
        let columns: Vec<&str> = reps.split(',').collect();
        if columns.len() != sets.len() {
            return Err(format!(
                "--replicas: {} entries for {} remote shards (one per shard, `-` for none)",
                columns.len(),
                sets.len()
            ));
        }
        for (set, column) in sets.iter_mut().zip(columns) {
            let column = column.trim();
            if column == "-" {
                continue;
            }
            for alternate in column.split('|') {
                let alternate = alternate.trim();
                if alternate.is_empty() {
                    return Err(format!("--replicas: empty replica address in `{reps}`"));
                }
                set.push(alternate.to_string());
            }
        }
    }
    Ok(sets)
}

/// Loads and validates a `.cxkmodel` snapshot, surfacing I/O and decode
/// failures as typed [`CxkError`]s rendered for the CLI.
fn read_model(path: &str) -> Result<TrainedModel, String> {
    load_model_file(path).map_err(cli_error)
}

/// Builds a dataset from XML files and directories.
fn dataset_from_xml_inputs(inputs: &[String]) -> Result<Dataset, String> {
    let files = expand_inputs(inputs)?;
    if files.is_empty() {
        return Err("no input XML files".into());
    }
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        builder
            .add_xml(&text)
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    Ok(builder.finish())
}

/// Builds a dataset by streaming newline-delimited corpus files through
/// the SAX tuple extractor (`DatasetBuilder::ingest_stream`): documents
/// never materialize as DOM trees, so peak memory is bounded by document
/// size and tree depth — never by corpus size.
fn dataset_from_corpus_streams(inputs: &[String]) -> Result<(Dataset, IngestStats), String> {
    let files = expand_inputs(inputs)?;
    if files.is_empty() {
        return Err("no input corpus files".into());
    }
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    let mut total = IngestStats::default();
    for file in &files {
        let reader = std::io::BufReader::new(
            std::fs::File::open(file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?,
        );
        let stats = builder
            .ingest_stream(reader)
            .map_err(|e| format!("{}: {e}", file.display()))?;
        total.documents += stats.documents;
        total.tuples += stats.tuples;
        total.capped_documents += stats.capped_documents;
    }
    Ok((builder.finish(), total))
}

/// Loads a `.cxkds` dataset, or builds one from XML inputs.
fn dataset_from_any_inputs(inputs: &[String]) -> Result<Dataset, String> {
    if inputs.len() == 1 && inputs[0].ends_with(".cxkds") {
        let text = std::fs::read_to_string(&inputs[0])
            .map_err(|e| format!("cannot read {}: {e}", inputs[0]))?;
        return load_dataset(&text).map_err(|e| e.to_string());
    }
    dataset_from_xml_inputs(inputs)
}

/// Expands directories into their `*.xml` files (sorted) and keeps file
/// paths as-is.
fn expand_inputs(inputs: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for input in inputs {
        let path = Path::new(input);
        if path.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot list {input}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "xml"))
                .collect();
            in_dir.sort();
            files.extend(in_dir);
        } else {
            files.push(path.to_path_buf());
        }
    }
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory unique to this test process.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cxk-cli-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn write_corpus(dir: &Path) {
        let docs = [
            r#"<dblp><inproceedings key="m1"><author>A. Miner</author><title>mining clustering patterns trees</title><booktitle>KDD</booktitle></inproceedings></dblp>"#,
            r#"<dblp><inproceedings key="m2"><author>A. Miner</author><title>frequent mining clustering streams</title><booktitle>KDD</booktitle></inproceedings></dblp>"#,
            r#"<dblp><article key="n1"><author>B. Netter</author><title>routing congestion networks protocols</title><journal>Networking</journal></article></dblp>"#,
            r#"<dblp><article key="n2"><author>B. Netter</author><title>packet routing networks latency</title><journal>Networking</journal></article></dblp>"#,
        ];
        for (i, doc) in docs.iter().enumerate() {
            std::fs::write(dir.join(format!("doc{i}.xml")), doc).expect("write doc");
        }
        // A non-XML file that must be ignored by directory expansion.
        std::fs::write(dir.join("notes.txt"), "not xml").unwrap();
    }

    fn args(list: &[String]) -> Vec<String> {
        list.to_vec()
    }

    #[test]
    fn build_info_cluster_round_trip() {
        let dir = scratch("roundtrip");
        write_corpus(&dir);
        let ds_path = dir.join("corpus.cxkds");

        let out = build(&args(&[
            dir.to_str().unwrap().to_string(),
            "-o".into(),
            ds_path.to_str().unwrap().to_string(),
        ]))
        .expect("build");
        assert!(out.contains("4 documents"), "{out}");

        let out = info(&args(&[ds_path.to_str().unwrap().to_string()])).expect("info");
        assert!(out.contains("documents            4"), "{out}");
        assert!(out.contains("transactions         4"), "{out}");

        let out = cluster(&args(&[
            ds_path.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--gamma".into(),
            "0.5".into(),
            "--seed".into(),
            "1".into(),
        ]))
        .expect("cluster");
        // 4 assignment rows + 2 summary lines.
        assert_eq!(out.lines().count(), 6, "{out}");
        assert!(out.contains("# algorithm=cxk k=2"), "{out}");
        // The two mining docs share a cluster, as do the two networking docs.
        let rows: Vec<&str> = out.lines().take(4).collect();
        let cluster_of = |row: &str| row.split('\t').nth(2).unwrap().to_string();
        assert_eq!(cluster_of(rows[0]), cluster_of(rows[1]), "{out}");
        assert_eq!(cluster_of(rows[2]), cluster_of(rows[3]), "{out}");
        assert_ne!(cluster_of(rows[0]), cluster_of(rows[2]), "{out}");
    }

    #[test]
    fn cluster_directly_from_xml_directory() {
        let dir = scratch("fromxml");
        write_corpus(&dir);
        let out = cluster(&args(&[
            dir.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--quiet".into(),
        ]))
        .expect("cluster");
        assert!(
            out.starts_with("# algorithm"),
            "quiet prints only the summary: {out}"
        );
    }

    #[test]
    fn all_algorithms_run() {
        let dir = scratch("algos");
        write_corpus(&dir);
        for (algorithm, m) in [("cxk", "2"), ("pk", "2"), ("vsm", "1")] {
            let out = cluster(&args(&[
                dir.to_str().unwrap().to_string(),
                "--k".into(),
                "2".into(),
                "--m".into(),
                m.into(),
                "--algorithm".into(),
                algorithm.into(),
                "--quiet".into(),
            ]))
            .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
            assert!(out.contains(&format!("algorithm={algorithm}")));
        }
    }

    #[test]
    fn invalid_flag_combinations_error_instead_of_panicking() {
        let dir = scratch("combos");
        write_corpus(&dir);
        let dir_arg = dir.to_str().unwrap().to_string();
        // The VSM baseline is centralized-only: --m 2 is a typed error now,
        // not a silently ignored flag.
        let e = cluster(&args(&[
            dir_arg.clone(),
            "--algorithm".into(),
            "vsm".into(),
            "--m".into(),
            "2".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("centralized-only"), "{e}");
        // Engine validation surfaces --m 0 as a flag error.
        let e = cluster(&args(&[dir_arg, "--m".into(), "0".into()])).unwrap_err();
        assert!(e.contains("--m"), "{e}");
    }

    #[test]
    fn helpful_errors() {
        let dir = scratch("errors");
        write_corpus(&dir);
        let dir_arg = dir.to_str().unwrap().to_string();
        assert!(build(std::slice::from_ref(&dir_arg))
            .unwrap_err()
            .contains("-o"));
        assert!(cluster(&args(&["/nonexistent/x.xml".into()]))
            .unwrap_err()
            .contains("cannot read"));
        assert!(cluster(&args(&[dir_arg.clone(), "--k".into(), "0".into()]))
            .unwrap_err()
            .contains("--k"));
        assert!(
            cluster(&args(&[dir_arg.clone(), "--gamma".into(), "2".into()]))
                .unwrap_err()
                .contains("gamma")
        );
        assert!(
            cluster(&args(&[dir_arg, "--algorithm".into(), "magic".into()]))
                .unwrap_err()
                .contains("unknown algorithm")
        );
        assert!(info(&args(&[])).is_err());
    }

    #[test]
    fn assign_routes_arrivals_to_base_clusters() {
        let base = scratch("assign-base");
        write_corpus(&base);
        let fresh = scratch("assign-new");
        std::fs::write(
            fresh.join("new0.xml"),
            r#"<dblp><inproceedings key="m9"><author>A. Miner</author><title>clustering mining new patterns</title><booktitle>KDD</booktitle></inproceedings></dblp>"#,
        )
        .unwrap();
        std::fs::write(
            fresh.join("new1.xml"),
            r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised stew</dish></recipe></recipes>"#,
        )
        .unwrap();
        let out = assign(&args(&[
            "--base".into(),
            base.to_str().unwrap().to_string(),
            "--new".into(),
            fresh.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--gamma".into(),
            "0.5".into(),
            "--seed".into(),
            "1".into(),
        ]))
        .expect("assign");
        assert!(out.starts_with("# base: 4 documents"), "{out}");
        // The mining arrival joins a proper cluster; the recipe is trash.
        let lines: Vec<&str> = out.lines().skip(1).collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(!lines[0].ends_with("trash"), "{out}");
        assert!(lines[1].ends_with("trash"), "{out}");
    }

    #[test]
    fn train_then_classify_round_trip() {
        let dir = scratch("train");
        write_corpus(&dir);
        let model_path = dir.join("model.cxkmodel");

        // --out alias must work wherever -o does.
        let out = train(&args(&[
            dir.to_str().unwrap().to_string(),
            "--out".into(),
            model_path.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--gamma".into(),
            "0.5".into(),
            "--seed".into(),
            "1".into(),
        ]))
        .expect("train");
        assert!(out.contains("trained k=2"), "{out}");
        assert!(out.contains("2 representatives"), "{out}");
        assert!(model_path.exists());

        // Classify a fresh mining-flavored document and a clear alien.
        let fresh = scratch("train-new");
        std::fs::write(
            fresh.join("new0.xml"),
            r#"<dblp><inproceedings key="m9"><author>A. Miner</author><title>clustering mining new patterns</title><booktitle>KDD</booktitle></inproceedings></dblp>"#,
        )
        .unwrap();
        std::fs::write(
            fresh.join("new1.xml"),
            r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised stew</dish></recipe></recipes>"#,
        )
        .unwrap();
        for brute in [false, true] {
            let mut cmd = vec![
                model_path.to_str().unwrap().to_string(),
                fresh.to_str().unwrap().to_string(),
            ];
            if brute {
                cmd.push("--brute".into());
            }
            let out = classify(&args(&cmd)).expect("classify");
            let lines: Vec<&str> = out.lines().collect();
            assert_eq!(lines.len(), 2, "{out}");
            let cluster_of = |row: &str| row.split('\t').nth(1).unwrap().to_string();
            assert_ne!(cluster_of(lines[0]), "trash", "{out}");
            assert_eq!(cluster_of(lines[1]), "trash", "{out}");
        }
    }

    #[test]
    fn classify_jsonl_emits_one_object_per_file() {
        let dir = scratch("jsonl");
        write_corpus(&dir);
        let model_path = dir.join("model.cxkmodel");
        train(&args(&[
            dir.to_str().unwrap().to_string(),
            "-o".into(),
            model_path.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--gamma".into(),
            "0.5".into(),
            "--seed".into(),
            "1".into(),
        ]))
        .expect("train");

        let out = classify(&args(&[
            model_path.to_str().unwrap().to_string(),
            dir.join("doc0.xml").to_str().unwrap().to_string(),
            "--jsonl".into(),
        ]))
        .expect("classify --jsonl");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 1, "{out}");
        assert!(lines[0].starts_with(r#"{"file":"#), "{out}");
        assert!(lines[0].contains(r#""cluster":"#), "{out}");
        assert!(lines[0].contains(r#""trash":false"#), "{out}");
        assert!(lines[0].contains(r#""score":"#), "{out}");
        // Same assignment shape as the server's /classify endpoint: the
        // tuples field is an array of per-tuple objects, not a count.
        assert!(lines[0].contains(r#""tuples":[{"cluster":"#), "{out}");
        assert!(lines[0].ends_with('}'), "{out}");
    }

    #[test]
    fn synth_train_stream_classify_stream_round_trip() {
        let dir = scratch("synth");
        let corpus_path = dir.join("corpus.xml");
        let labels_path = dir.join("labels.tsv");

        let out = synth(&args(&[
            "--corpus".into(),
            "dblp".into(),
            "--docs".into(),
            "30".into(),
            "--seed".into(),
            "42".into(),
            "-o".into(),
            corpus_path.to_str().unwrap().to_string(),
            "--labels".into(),
            labels_path.to_str().unwrap().to_string(),
        ]))
        .expect("synth");
        assert!(out.contains("30 dblp documents"), "{out}");
        let corpus = std::fs::read_to_string(&corpus_path).unwrap();
        assert_eq!(corpus.lines().count(), 30, "one document per line");
        let labels = std::fs::read_to_string(&labels_path).unwrap();
        assert_eq!(labels.lines().count(), 30, "one label row per document");

        // Stream-train straight off the corpus file…
        let model_path = dir.join("model.cxkmodel");
        let out = train(&args(&[
            corpus_path.to_str().unwrap().to_string(),
            "--stream".into(),
            "--k".into(),
            "4".into(),
            "--seed".into(),
            "1".into(),
            "-o".into(),
            model_path.to_str().unwrap().to_string(),
        ]))
        .expect("train --stream");
        assert!(
            out.contains("streamed 30 documents"),
            "ingest summary: {out}"
        );
        assert!(out.contains("0 capped"), "{out}");
        assert!(out.contains("trained k=4"), "{out}");

        // …and stream-classify the same corpus against it.
        let out = classify(&args(&[
            model_path.to_str().unwrap().to_string(),
            corpus_path.to_str().unwrap().to_string(),
            "--stream".into(),
        ]))
        .expect("classify --stream");
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 31, "30 rows + summary: {out}");
        assert!(lines[0].contains(":1\t"), "rows are labeled file:line");
        assert_eq!(*lines.last().unwrap(), "# documents=30 capped=0");

        // The jsonl form carries the capped flag per document instead.
        let out = classify(&args(&[
            model_path.to_str().unwrap().to_string(),
            corpus_path.to_str().unwrap().to_string(),
            "--stream".into(),
            "--jsonl".into(),
        ]))
        .expect("classify --stream --jsonl");
        assert_eq!(out.lines().count(), 30, "{out}");
        assert!(out.lines().all(|l| l.contains(r#""capped":false"#)));
    }

    #[test]
    fn streamed_training_matches_dom_training() {
        let dir = scratch("stream-eq");
        write_corpus(&dir);
        // The same four documents as one newline-delimited corpus file
        // (written next to the scratch dir so directory expansion does
        // not pick it up as a fifth input).
        let corpus_dir = scratch("stream-eq-corpus");
        let corpus_path = corpus_dir.join("corpus.xml");
        let mut joined = String::new();
        for i in 0..4 {
            joined.push_str(&std::fs::read_to_string(dir.join(format!("doc{i}.xml"))).unwrap());
            joined.push('\n');
        }
        std::fs::write(&corpus_path, joined).unwrap();

        let train_with = |inputs: Vec<String>, model: &Path| {
            let mut cmd = inputs;
            cmd.extend([
                "--k".into(),
                "2".into(),
                "--gamma".into(),
                "0.5".into(),
                "--seed".into(),
                "1".into(),
                "-o".into(),
                model.to_str().unwrap().to_string(),
            ]);
            train(&args(&cmd)).expect("train")
        };
        let dom_model = dir.join("dom.cxkmodel");
        let dom_out = train_with(vec![dir.to_str().unwrap().to_string()], &dom_model);
        let stream_model = dir.join("stream.cxkmodel");
        let stream_out = train_with(
            vec![corpus_path.to_str().unwrap().to_string(), "--stream".into()],
            &stream_model,
        );
        // Same clustering outcome line for line (modulo the ingest
        // summary and the output path)…
        assert_eq!(
            dom_out.lines().next().unwrap(),
            stream_out.lines().nth(1).unwrap(),
            "dom: {dom_out}\nstream: {stream_out}"
        );
        assert_eq!(
            dom_out.lines().nth(1).unwrap(),
            stream_out.lines().nth(2).unwrap()
        );
        // …and bit-identical model snapshots.
        assert_eq!(
            std::fs::read(&dom_model).unwrap(),
            std::fs::read(&stream_model).unwrap(),
            "streamed ingest must reproduce the DOM-built model exactly"
        );
    }

    #[test]
    fn synth_errors() {
        let dir = scratch("synth-errors");
        let out_arg = dir.join("c.xml").to_str().unwrap().to_string();
        assert!(synth(&args(&["--docs".into(), "5".into()]))
            .unwrap_err()
            .contains("-o"));
        assert!(
            synth(&args(&["-o".into(), out_arg.clone()]))
                .unwrap_err()
                .contains("--docs"),
            "docs is required"
        );
        let e = synth(&args(&[
            "--corpus".into(),
            "shakespeare".into(),
            "--docs".into(),
            "5".into(),
            "-o".into(),
            out_arg.clone(),
        ]))
        .unwrap_err();
        assert!(e.contains("unknown corpus"), "{e}");
        let e = synth(&args(&[
            "--corpus".into(),
            "ieee".into(),
            "--dialects".into(),
            "3".into(),
            "--docs".into(),
            "5".into(),
            "-o".into(),
            out_arg.clone(),
        ]))
        .unwrap_err();
        assert!(e.contains("--dialects"), "{e}");
        assert!(synth(&args(&["stray.xml".into()]))
            .unwrap_err()
            .contains("positional"));
    }

    #[test]
    fn train_and_classify_errors() {
        let dir = scratch("train-errors");
        write_corpus(&dir);
        let dir_arg = dir.to_str().unwrap().to_string();
        assert!(train(std::slice::from_ref(&dir_arg))
            .unwrap_err()
            .contains("-o"));
        assert!(train(&args(&[
            dir_arg.clone(),
            "-o".into(),
            dir.join("m.cxkmodel").to_str().unwrap().to_string(),
            "--k".into(),
            "0".into()
        ]))
        .unwrap_err()
        .contains("--k"));
        assert!(classify(&args(&[])).is_err());
        // A dataset file is not a model snapshot.
        let ds_path = dir.join("corpus.cxkds");
        build(&args(&[
            dir_arg.clone(),
            "-o".into(),
            ds_path.to_str().unwrap().to_string(),
        ]))
        .unwrap();
        let e = classify(&args(&[
            ds_path.to_str().unwrap().to_string(),
            dir_arg.clone(),
        ]))
        .unwrap_err();
        assert!(e.contains("model load error"), "{e}");
        assert!(serve(&args(&["/nonexistent.cxkmodel".into()]))
            .unwrap_err()
            .contains("cannot read"));
        assert!(serve(&args(&[])).unwrap_err().contains("exactly one"));
        // --watch and --shards are validated before the model is even read.
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--watch".into(),
            "0".into()
        ]))
        .unwrap_err()
        .contains("--watch"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--shards".into(),
            "0".into()
        ]))
        .unwrap_err()
        .contains("--shards"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--shards".into(),
            "few".into()
        ]))
        .unwrap_err()
        .contains("--shards"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--watch".into(),
            "soon".into()
        ]))
        .unwrap_err()
        .contains("--watch"));
        // The transport knobs are validated the same way: a zero-depth
        // queue is rejected, a non-numeric keep-alive is rejected, but
        // `--keep-alive 0` is the documented off switch and gets past
        // flag parsing (failing later on the missing model instead).
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--queue-depth".into(),
            "0".into()
        ]))
        .unwrap_err()
        .contains("--queue-depth"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--queue-depth".into(),
            "deep".into()
        ]))
        .unwrap_err()
        .contains("queue-depth"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--keep-alive".into(),
            "forever".into()
        ]))
        .unwrap_err()
        .contains("keep-alive"));
        assert!(serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--keep-alive".into(),
            "0".into()
        ]))
        .unwrap_err()
        .contains("cannot read"));
    }

    #[test]
    fn serve_remote_flags_are_validated_before_the_model_is_read() {
        // The two shard layouts are mutually exclusive.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--shards".into(),
            "2".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--remote-shards"), "{e}");
        assert!(e.contains("--shards"), "{e}");
        // --replicas is a parallel list: one entry per remote shard.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271,127.0.0.1:7272".into(),
            "--replicas".into(),
            "127.0.0.1:7273".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--replicas"), "{e}");
        assert!(e.contains("2 remote shards"), "{e}");
        // …and meaningless without --remote-shards.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--replicas".into(),
            "127.0.0.1:7273".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("requires --remote-shards"), "{e}");
        // Empty addresses are rejected, not silently skipped.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271,,127.0.0.1:7272".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("empty address"), "{e}");
        // A zero deadline is rejected.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271".into(),
            "--remote-deadline-ms".into(),
            "0".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--remote-deadline-ms"), "{e}");
        // A well-formed remote topology gets past flag validation and
        // fails on the missing model instead.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271,127.0.0.1:7272".into(),
            "--replicas".into(),
            "127.0.0.1:7273|127.0.0.1:7274,-".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
    }

    #[test]
    fn serve_tree_flags_are_validated_before_the_model_is_read() {
        // The tree is mutually exclusive with both exact shard layouts.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--shards".into(),
            "2".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--tree"), "{e}");
        assert!(e.contains("--shards"), "{e}");
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--remote-shards".into(),
            "127.0.0.1:7271".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--tree"), "{e}");
        assert!(e.contains("--remote-shards"), "{e}");
        // The shape knobs require --tree…
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--branch".into(),
            "4".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("requires --tree"), "{e}");
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--beam".into(),
            "2".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("requires --tree"), "{e}");
        // …and are bounds-checked before the model is read.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--branch".into(),
            "1".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--branch"), "{e}");
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--beam".into(),
            "0".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--beam"), "{e}");
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--branch".into(),
            "wide".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("branch"), "{e}");
        // A well-formed tree config gets past flag validation and fails
        // on the missing model instead.
        let e = serve(&args(&[
            "/nonexistent.cxkmodel".into(),
            "--tree".into(),
            "--branch".into(),
            "4".into(),
            "--beam".into(),
            "2".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("cannot read"), "{e}");
    }

    #[test]
    fn shard_serve_validates_flags_and_range_bounds() {
        assert!(shard_serve(&args(&[])).unwrap_err().contains("--model"));
        assert!(shard_serve(&args(&["stray.xml".into()]))
            .unwrap_err()
            .contains("no positional arguments"));
        let e =
            shard_serve(&args(&["--model".into(), "/nonexistent.cxkmodel".into()])).unwrap_err();
        assert!(e.contains("--range"), "{e}");
        let e = shard_serve(&args(&[
            "--model".into(),
            "/nonexistent.cxkmodel".into(),
            "--range".into(),
            "0..2".into(),
        ]))
        .unwrap_err();
        assert!(e.contains("--listen"), "{e}");
        // The range's shape is checked before the model is read.
        for bad in ["whole", "0..", "..2", "0-2", "a..b"] {
            let e = shard_serve(&args(&[
                "--model".into(),
                "/nonexistent.cxkmodel".into(),
                "--range".into(),
                bad.into(),
                "--listen".into(),
                "127.0.0.1:0".into(),
            ]))
            .unwrap_err();
            assert!(e.contains("--range"), "{bad}: {e}");
            assert!(e.contains("expected A..B"), "{bad}: {e}");
        }

        // Bounds are checked against the trained model's k.
        let dir = scratch("shard-serve");
        write_corpus(&dir);
        let model_path = dir.join("model.cxkmodel");
        train(&args(&[
            dir.to_str().unwrap().to_string(),
            "-o".into(),
            model_path.to_str().unwrap().to_string(),
            "--k".into(),
            "2".into(),
            "--gamma".into(),
            "0.5".into(),
            "--seed".into(),
            "1".into(),
        ]))
        .expect("train");
        for bad in ["1..5", "3..3", "2..1"] {
            let e = shard_serve(&args(&[
                "--model".into(),
                model_path.to_str().unwrap().to_string(),
                "--range".into(),
                bad.into(),
                "--listen".into(),
                "127.0.0.1:0".into(),
            ]))
            .unwrap_err();
            assert!(e.contains("--range"), "{bad}: {e}");
            assert!(e.contains("sub-range"), "{bad}: {e}");
        }
    }

    #[test]
    fn assign_requires_base_and_new() {
        assert!(assign(&args(&["--base".into(), "x".into()]))
            .unwrap_err()
            .contains("--new"));
        assert!(assign(&args(&["--new".into(), "x".into()]))
            .unwrap_err()
            .contains("--base"));
    }

    #[test]
    fn malformed_xml_is_reported_with_its_file() {
        let dir = scratch("malformed");
        std::fs::write(dir.join("bad.xml"), "<a><b></a>").unwrap();
        let e = info(&args(&[dir.to_str().unwrap().to_string()])).unwrap_err();
        assert!(e.contains("bad.xml"), "{e}");
    }
}
