//! Minimal `--flag value` argument parsing for the CLI.

/// Splits an argument list into positional arguments and `--key value`
/// flags. A repeated flag keeps its last value; `--quiet`-style boolean
/// flags are queried with [`Parsed::has`].
#[derive(Debug, Default)]
pub struct Parsed {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 5] = ["quiet", "brute", "jsonl", "stream", "tree"];

impl Parsed {
    /// Parses `args`.
    ///
    /// # Errors
    /// Errors when a value-taking flag has no value.
    pub fn parse(args: &[String]) -> Result<Parsed, String> {
        let mut parsed = Parsed::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    parsed.flags.push((name.to_string(), None));
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                parsed.flags.push((name.to_string(), Some(value.clone())));
            } else if let Some(name) = arg.strip_prefix('-').filter(|n| !n.is_empty()) {
                // Short flags: only `-o` is used.
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag -{name} needs a value"))?;
                parsed.flags.push((name.to_string(), Some(value.clone())));
            } else {
                parsed.positional.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    /// The positional arguments.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// The output path: `-o` or its long alias `--out` (last one wins).
    pub fn output(&self) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == "o" || n == "out")
            .and_then(|(_, v)| v.as_deref())
    }

    /// The last value of a string flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// A parsed numeric/typed flag with a default.
    ///
    /// # Errors
    /// Errors when the value does not parse as `T`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get_str(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse `{raw}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_and_flags() {
        let p = Parsed::parse(&args(&["a.xml", "--k", "4", "b.xml", "-o", "out"])).unwrap();
        assert_eq!(p.positional(), &["a.xml".to_string(), "b.xml".to_string()]);
        assert_eq!(p.get::<usize>("k", 1).unwrap(), 4);
        assert_eq!(p.get_str("o"), Some("out"));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let p = Parsed::parse(&args(&["--quiet", "x.xml"])).unwrap();
        assert!(p.has("quiet"));
        assert_eq!(p.positional(), &["x.xml".to_string()]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&args(&["--k"])).is_err());
    }

    #[test]
    fn bad_typed_value_is_an_error() {
        let p = Parsed::parse(&args(&["--k", "many"])).unwrap();
        assert!(p.get::<usize>("k", 1).is_err());
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = Parsed::parse(&args(&[])).unwrap();
        assert_eq!(p.get::<f64>("gamma", 0.7).unwrap(), 0.7);
        assert_eq!(p.get_str("o"), None);
    }

    #[test]
    fn repeated_flag_keeps_last() {
        let p = Parsed::parse(&args(&["--k", "2", "--k", "5"])).unwrap();
        assert_eq!(p.get::<usize>("k", 1).unwrap(), 5);
    }

    #[test]
    fn out_aliases_o() {
        assert_eq!(
            Parsed::parse(&args(&["--out", "x"])).unwrap().output(),
            Some("x")
        );
        assert_eq!(
            Parsed::parse(&args(&["-o", "y"])).unwrap().output(),
            Some("y")
        );
        // Last one wins across both spellings.
        assert_eq!(
            Parsed::parse(&args(&["-o", "y", "--out", "z"]))
                .unwrap()
                .output(),
            Some("z")
        );
        assert_eq!(Parsed::parse(&args(&[])).unwrap().output(), None);
    }
}
