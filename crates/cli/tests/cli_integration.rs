//! End-to-end tests of the real `cxk` binary over a generated corpus.

use std::path::PathBuf;
use std::process::Command;

fn cxk() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cxk"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cxk-bin-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_corpus(dir: &std::path::Path, n: usize) {
    for i in 0..n {
        let (tag, venue_tag, venue, words) = if i % 2 == 0 {
            (
                "inproceedings",
                "booktitle",
                "KDD",
                "mining clustering frequent patterns",
            )
        } else {
            (
                "article",
                "journal",
                "Networking",
                "routing congestion packet protocols",
            )
        };
        let doc = format!(
            r#"<dblp><{tag} key="k{i}"><author>Person {i}</author><title>{words} study {i}</title><{venue_tag}>{venue}</{venue_tag}></{tag}></dblp>"#
        );
        std::fs::write(dir.join(format!("doc{i:02}.xml")), doc).unwrap();
    }
}

#[test]
fn binary_builds_inspects_and_clusters() {
    let dir = scratch("pipeline");
    write_corpus(&dir, 8);
    let ds = dir.join("corpus.cxkds");

    let out = cxk()
        .args(["build", dir.to_str().unwrap(), "-o", ds.to_str().unwrap()])
        .output()
        .expect("run cxk build");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("8 documents"));

    let out = cxk()
        .args(["info", ds.to_str().unwrap()])
        .output()
        .expect("run cxk info");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("transactions         8"));

    let out = cxk()
        .args([
            "cluster",
            ds.to_str().unwrap(),
            "--k",
            "2",
            "--gamma",
            "0.5",
            "--seed",
            "1",
            "--m",
            "3",
        ])
        .output()
        .expect("run cxk cluster");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.lines().count(),
        10,
        "8 rows + 2 summary lines:\n{stdout}"
    );
    assert!(stdout.contains("# algorithm=cxk k=2 m=3"));
}

#[test]
fn binary_reports_errors_on_stderr_with_nonzero_exit() {
    let out = cxk()
        .args(["cluster", "/nonexistent/missing.xml"])
        .output()
        .expect("run cxk");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cxk:"));

    let out = cxk().arg("frobnicate").output().expect("run cxk");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn binary_help_exits_zero() {
    let out = cxk().arg("help").output().expect("run cxk help");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage: cxk"));
}
