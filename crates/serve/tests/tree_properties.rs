//! Property tests for the hierarchical representative tree: over the
//! repository's `samples/` corpus and a parameter grid, a full-width
//! beam is bit-identical to brute force, and narrow beams obey the
//! pruning/rescue invariants and a pinned agreement floor.

use cxk_core::{CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::{Classifier, TreeClassifier, TreeConfig, TreeEngine};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// The repository's `samples/` corpus.
fn sample_docs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("samples/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "xml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable sample");
            (name, text)
        })
        .collect()
}

fn train_on_samples(k: usize, f: f64, gamma: f64) -> TrainedModel {
    let docs = sample_docs();
    assert_eq!(docs.len(), 12, "samples corpus");
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for (_, text) in &docs {
        builder.add_xml(text).expect("valid sample");
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(f, gamma);
    config.seed = 1;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid sample config")
        .fit(&ds)
        .expect("fit succeeds")
        .into_model(&ds, BuildOptions::default())
}

const ALIEN: &str = r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised seitan stew</dish></recipe></recipes>"#;

/// Every sample plus one document alien to the corpus (which must land
/// in trash at every beam width, thanks to the zero-similarity rescue).
fn eval_docs() -> Vec<(String, String)> {
    let mut docs = sample_docs();
    docs.push(("alien".to_string(), ALIEN.to_string()));
    docs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Full beam ⇒ bit-identical to brute force: cluster ids,
    /// similarities, scores AND candidate counts, across k (including
    /// k ≤ B level-less trees), γ (including the degenerate γ = 0) and
    /// branching factors.
    #[test]
    fn full_beam_is_bit_identical_to_brute_on_samples(
        k in 1usize..7,
        gamma_step in 0u8..5,
        branch in 2usize..5,
    ) {
        let gamma = f64::from(gamma_step) * 0.2;
        let model = Arc::new(train_on_samples(k, 0.5, gamma));
        // Beam ≥ the widest level (≤ ⌈k/B⌉ ≤ k) keeps every subtree.
        let engine = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch, beam: k },
        ));
        prop_assert!(engine.is_exact(), "beam k covers the widest level");
        let mut tree = TreeClassifier::new(engine);
        let mut brute = Classifier::shared(model);
        for (name, text) in &eval_docs() {
            let a = tree.classify(text).expect("tree classify");
            let b = brute.classify_brute(text).expect("brute classify");
            prop_assert_eq!(a.cluster, b.cluster, "cluster for {}", name);
            prop_assert_eq!(a.score, b.score, "score for {} must be bit-identical", name);
            prop_assert_eq!(a.capped, b.capped);
            prop_assert_eq!(a.tuples.len(), b.tuples.len());
            for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
                prop_assert_eq!(ta.cluster, tb.cluster, "tuple cluster for {}", name);
                prop_assert_eq!(ta.similarity, tb.similarity, "simγJ must be bit-identical");
                prop_assert_eq!(ta.candidates, tb.candidates, "full beam scores all k");
            }
        }
    }

}

/// Narrow beams may mis-assign but never break the invariants: a
/// tuple's similarity never exceeds brute force's (the re-rank
/// maximizes over a subset), zero-similarity verdicts are always
/// backed by a full scan (candidates == k), and document agreement
/// with brute force stays above a pinned floor. Exhaustive over the
/// deterministic (k, γ) grid so the floor is the measured minimum, not
/// a sampled one.
#[test]
fn narrow_beam_invariants_and_agreement_on_samples() {
    let docs = eval_docs();
    let mut min_agreement = f64::INFINITY;
    for k in 4usize..7 {
        for gamma_step in 1u8..5 {
            let gamma = f64::from(gamma_step) * 0.2;
            let model = Arc::new(train_on_samples(k, 0.5, gamma));
            let engine = Arc::new(TreeEngine::build(
                Arc::clone(&model),
                TreeConfig { branch: 2, beam: 1 },
            ));
            let mut tree = TreeClassifier::new(engine);
            let mut brute = Classifier::shared(model);
            let mut agree = 0usize;
            for (name, text) in &docs {
                let a = tree.classify(text).expect("tree classify");
                let b = brute.classify_brute(text).expect("brute classify");
                agree += usize::from(a.cluster == b.cluster);
                assert_eq!(a.tuples.len(), b.tuples.len());
                for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
                    assert!(
                        ta.similarity <= tb.similarity,
                        "subset max exceeds full max for {name} (k={k} γ={gamma})"
                    );
                    assert!(ta.candidates <= k, "candidates bounded by k");
                    if ta.similarity == 0.0 {
                        assert_eq!(
                            ta.candidates, k,
                            "zero-similarity verdicts must be rescued to a full scan"
                        );
                    }
                }
            }
            let agreement = agree as f64 / docs.len() as f64;
            min_agreement = min_agreement.min(agreement);
        }
    }
    // Pinned floor: the measured minimum over the grid for the
    // narrowest possible beam (W=1, B=2). Wider beams only improve it;
    // the serve_throughput bench pins ≥ 0.95 for the default beam.
    assert!(
        min_agreement >= 0.53,
        "beam-1 agreement minimum {min_agreement:.4} fell below the pinned floor"
    );
}
