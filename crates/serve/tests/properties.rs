//! Property tests for the serving layer: snapshot round-trips on arbitrary
//! representatives, and index-vs-brute-force assignment equality on the
//! repository's `samples/` corpus.

use cxk_core::rep::{RepItem, Representative};
use cxk_core::{load_model, save_model, CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::Classifier;
use cxk_text::{SparseVec, TermStatsBuilder};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use cxk_util::{Interner, Symbol};
use cxk_xml::path::{PathId, PathTable};
use proptest::prelude::*;
use std::path::PathBuf;

/// One generated representative item:
/// `(path_idx, tag_path_idx, vector pairs (term_idx, weight), fingerprint,
/// source)` — indices resolved against a fixture alphabet below.
type ItemSpec = (u8, u8, Vec<(u8, f64)>, u64, u32);

fn item_spec() -> impl Strategy<Value = ItemSpec> {
    (
        0u8..12,
        0u8..12,
        proptest::collection::vec((0u8..10, -3.0f64..3.0), 0..6),
        any::<u64>(),
        0u32..10,
    )
}

fn reps_spec() -> impl Strategy<Value = Vec<Vec<ItemSpec>>> {
    proptest::collection::vec(proptest::collection::vec(item_spec(), 0..5), 0..5)
}

/// Materializes a [`TrainedModel`] around generated representatives: a
/// fixed path/vocabulary alphabet plus the generated items.
fn model_from_spec(spec: &[Vec<ItemSpec>], f: f64, gamma: f64) -> TrainedModel {
    let mut labels = Interner::new();
    let mut paths = PathTable::new();
    // 12 paths over an 8-label alphabet, lengths 1..=3, some sharing labels.
    let specs: [&[usize]; 12] = [
        &[0],
        &[0, 1],
        &[0, 1, 2],
        &[0, 3, 2],
        &[3, 2],
        &[4],
        &[4, 5],
        &[4, 5, 6],
        &[6, 5, 4],
        &[7],
        &[7, 0],
        &[2, 2, 2],
    ];
    let path_ids: Vec<PathId> = specs
        .iter()
        .map(|spec| {
            let syms: Vec<Symbol> = spec
                .iter()
                .map(|&l| labels.intern(&format!("tag{l}")))
                .collect();
            paths.intern(&syms)
        })
        .collect();
    let mut vocabulary = Interner::new();
    for t in 0..10 {
        vocabulary.intern(&format!("term{t}"));
    }

    let reps: Vec<Representative> = spec
        .iter()
        .map(|items| Representative {
            items: items
                .iter()
                .map(|&(p, tp, ref pairs, fp, source)| RepItem {
                    path: path_ids[p as usize],
                    tag_path: path_ids[tp as usize],
                    vector: SparseVec::from_pairs(
                        pairs
                            .iter()
                            .map(|&(t, w)| (Symbol(u32::from(t)), w))
                            .collect(),
                    ),
                    fingerprint: fp,
                    source: (source % 3 != 0).then_some(cxk_transact::ItemId(source)),
                })
                .collect(),
        })
        .collect();

    TrainedModel {
        params: SimParams::new(f, gamma),
        build: BuildOptions::default(),
        labels,
        vocabulary,
        paths,
        reps,
        term_stats: TermStatsBuilder::from_parts(17, vec![3, 1, 4, 1, 5]),
        trained_documents: 12,
        trained_transactions: 34,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips_arbitrary_representatives(
        spec in reps_spec(),
        f in 0.0f64..1.0,
        gamma in 0.0f64..1.0,
    ) {
        let model = model_from_spec(&spec, f, gamma);
        let bytes = save_model(&model);
        let loaded = load_model(&bytes).expect("snapshot loads");

        prop_assert_eq!(loaded.params, model.params);
        prop_assert_eq!(loaded.reps.len(), model.reps.len());
        for (a, b) in loaded.reps.iter().zip(&model.reps) {
            // Bit-exact: vectors, fingerprints, paths and provenance.
            prop_assert_eq!(&a.items, &b.items);
        }
        prop_assert_eq!(loaded.term_stats.total_tcus(), model.term_stats.total_tcus());
        prop_assert_eq!(loaded.term_stats.counts(), model.term_stats.counts());
        prop_assert_eq!(loaded.paths.len(), model.paths.len());
        for (id, path) in model.paths.iter() {
            prop_assert_eq!(loaded.paths.resolve(id), path);
        }
        for (sym, text) in model.labels.iter() {
            prop_assert_eq!(loaded.labels.resolve(sym), text);
        }
        for (sym, text) in model.vocabulary.iter() {
            prop_assert_eq!(loaded.vocabulary.resolve(sym), text);
        }
        prop_assert_eq!(loaded.trained_documents, model.trained_documents);
        prop_assert_eq!(loaded.trained_transactions, model.trained_transactions);

        // Serialization is deterministic: same model, same bytes.
        prop_assert_eq!(save_model(&loaded), bytes);
    }

    #[test]
    fn corrupting_any_byte_is_detected(spec in reps_spec(), offset_seed in 0u32..1000) {
        let model = model_from_spec(&spec, 0.5, 0.8);
        let mut bytes = save_model(&model);
        let offset = offset_seed as usize % bytes.len();
        bytes[offset] ^= 0x5A;
        // Either the checksum rejects it, or (for the checksum bytes
        // themselves) the mismatch against the payload does — a flipped
        // byte can never load silently.
        prop_assert!(load_model(&bytes).is_err());
    }
}

/// The repository's `samples/` corpus.
fn sample_docs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("samples/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "xml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable sample");
            (name, text)
        })
        .collect()
}

fn train_on_samples(k: usize, f: f64, gamma: f64) -> TrainedModel {
    let docs = sample_docs();
    assert_eq!(docs.len(), 12, "samples corpus");
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for (_, text) in &docs {
        builder.add_xml(text).expect("valid sample");
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(f, gamma);
    config.seed = 1;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid sample config")
        .fit(&ds)
        .expect("fit succeeds")
        .into_model(&ds, BuildOptions::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: over the samples corpus and a grid of
    /// parameters, indexed assignment equals brute force bit-for-bit —
    /// cluster ids, similarities and scores.
    #[test]
    fn index_agrees_with_brute_force_on_samples(
        k in 1usize..5,
        f_step in 0u8..5,
        gamma_step in 0u8..5,
    ) {
        let f = f64::from(f_step) * 0.25;
        let gamma = f64::from(gamma_step) * 0.2 + 0.1;
        let model = train_on_samples(k, f, gamma);
        let mut indexed = Classifier::new(model.clone());
        let mut brute = Classifier::new(model);
        let alien = r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised seitan stew</dish></recipe></recipes>"#;
        for (name, text) in sample_docs()
            .iter()
            .map(|(n, t)| (n.as_str(), t.as_str()))
            .chain([("alien", alien)])
        {
            let a = indexed.classify(text).expect("classify");
            let b = brute.classify_brute(text).expect("brute");
            prop_assert_eq!(a.cluster, b.cluster, "cluster for {}", name);
            prop_assert_eq!(a.score, b.score, "score for {}", name);
            prop_assert_eq!(a.tuples.len(), b.tuples.len());
            for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
                prop_assert_eq!(ta.cluster, tb.cluster);
                prop_assert_eq!(ta.similarity, tb.similarity, "simγJ must be bit-identical");
                prop_assert!(ta.candidates <= tb.candidates, "index may only prune");
            }
        }
    }
}
