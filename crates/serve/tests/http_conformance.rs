//! Protocol-conformance and torture suite for the event-driven HTTP
//! transport (ISSUE 6). Everything here speaks to a live server over raw
//! sockets — no client library — because the subject under test *is* the
//! wire behavior:
//!
//! * table-driven refusals: every malformed or oversized request is
//!   answered with the right 4xx/5xx and a closed connection, never a
//!   hang or an unbounded buffer;
//! * keep-alive and pipelining: several requests per connection, answers
//!   strictly in request order, byte-at-a-time delivery handled;
//! * the keep-alive × hot-reload torture: client threads pipeline
//!   classifications across 20 model swaps (both reload surfaces) and
//!   every response must be whole, carry exactly one `X-Model-Epoch`,
//!   and agree with the model of the epoch it claims;
//! * bounded-queue backpressure: a jammed queue sheds with
//!   `503` + parseable `Retry-After`, counts the sheds, keeps `GET
//!   /stats` answering inline, and drains back to `200`s.

use cxk_core::{save_model_file, CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::{Classifier, ServeOptions, Server};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn samples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples")
}

fn read_sample(name: &str) -> String {
    std::fs::read_to_string(samples_dir().join(name)).expect("sample exists")
}

/// Trains on ten of the twelve samples, holding out one per topic (the
/// same seeded recipe the serving integration suite pins).
fn train_held_out() -> (TrainedModel, Vec<String>) {
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for i in 1..=5 {
        builder
            .add_xml(&read_sample(&format!("mining{i}.xml")))
            .unwrap();
        builder
            .add_xml(&read_sample(&format!("network{i}.xml")))
            .unwrap();
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(2);
    config.params = SimParams::new(0.5, 0.5);
    config.seed = 3;
    let fit = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid training config")
        .fit(&ds)
        .expect("training runs");
    let model = fit.into_model(&ds, BuildOptions::default());
    let held_out = vec![read_sample("mining6.xml"), read_sample("network6.xml")];
    (model, held_out)
}

/// A deliberately different model over the same corpus (k = 3, another
/// seed), so a swap is observable.
fn train_variant() -> TrainedModel {
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for i in 1..=5 {
        builder
            .add_xml(&read_sample(&format!("mining{i}.xml")))
            .unwrap();
        builder
            .add_xml(&read_sample(&format!("network{i}.xml")))
            .unwrap();
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(3);
    config.params = SimParams::new(0.5, 0.5);
    config.seed = 11;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid variant config")
        .fit(&ds)
        .expect("training runs")
        .into_model(&ds, BuildOptions::default())
}

fn scratch_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cxk-http-conf-{}-{name}", std::process::id()))
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    // A wedged server must fail the test, not hang it.
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    stream
}

/// Reads exactly one `Content-Length`-framed response off a (possibly
/// keep-alive) connection: head byte-by-byte to the blank line, then the
/// declared body. Errors on EOF mid-response — a dropped connection.
fn read_response(stream: &mut TcpStream) -> std::io::Result<(String, String)> {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if stream.read(&mut byte)? == 0 {
            return Err(ErrorKind::UnexpectedEof.into());
        }
        head.push(byte[0]);
    }
    let head = String::from_utf8(head).expect("UTF-8 head");
    let length: usize = header_field(&head, "Content-Length")
        .parse()
        .expect("numeric Content-Length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok((
        head.trim_end().to_string(),
        String::from_utf8(body).expect("UTF-8 body"),
    ))
}

/// Pulls a header value out of a response head.
fn header_field(head: &str, name: &str) -> String {
    head.lines()
        .find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
        })
        .unwrap_or_else(|| panic!("{name} in {head}"))
}

/// Pulls `"field":value` out of the flat JSON the server emits.
fn json_field(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("delimiter after {field} in {body}"));
    rest[..end].to_string()
}

fn classify_request(xml: &str) -> String {
    format!(
        "POST /classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{xml}",
        xml.len()
    )
}

/// One request per connection, `Connection: close`, read to EOF.
fn one_shot(addr: SocketAddr, raw: &str) -> String {
    let mut stream = connect(addr);
    let _ = stream.write_all(raw.as_bytes());
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Table-driven protocol refusals: each hostile request must be answered
/// with its specific status — promptly, with the diagnostic in the body,
/// and with the connection closed (the `read_to_string` returning at all
/// proves no hang; EOF proves the close).
#[test]
fn refusal_table_answers_each_hostile_request_with_its_status() {
    struct Refusal {
        name: &'static str,
        raw: String,
        status: &'static str,
        body_contains: &'static str,
    }
    let cases = [
        Refusal {
            name: "malformed request line",
            raw: "GARBAGE\r\n\r\n".into(),
            status: "HTTP/1.1 400",
            body_contains: "malformed request line",
        },
        Refusal {
            name: "duplicate Content-Length, descending",
            raw: "POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello"
                .into(),
            status: "HTTP/1.1 400",
            body_contains: "duplicate Content-Length",
        },
        Refusal {
            name: "duplicate Content-Length, agreeing",
            raw: "POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
                .into(),
            status: "HTTP/1.1 400",
            body_contains: "duplicate Content-Length",
        },
        Refusal {
            name: "plus-prefixed Content-Length",
            raw: "POST /classify HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello".into(),
            status: "HTTP/1.1 400",
            body_contains: "bad Content-Length",
        },
        Refusal {
            name: "Transfer-Encoding smuggling vector",
            raw: "POST /classify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".into(),
            status: "HTTP/1.1 501",
            body_contains: "Transfer-Encoding",
        },
        Refusal {
            name: "giant declared body",
            raw: "POST /classify HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n".into(),
            status: "HTTP/1.1 413",
            body_contains: "exceeds",
        },
        Refusal {
            name: "unbounded header flood",
            raw: format!(
                "GET /model HTTP/1.1\r\nX-Flood: {}\r\n\r\n",
                "a".repeat(64 << 10)
            ),
            status: "HTTP/1.1 431",
            body_contains: "exceeds",
        },
    ];

    let (model, _) = train_held_out();
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");
    let addr = server.addr();

    for case in &cases {
        let response = one_shot(addr, &case.raw);
        assert!(
            response.starts_with(case.status),
            "{}: expected {}, got: {response}",
            case.name,
            case.status
        );
        assert!(
            response.contains(case.body_contains),
            "{}: body must name the refusal: {response}",
            case.name
        );
    }

    let stats = server.stats();
    assert_eq!(stats.requests, 0, "no refusal ever counts as a request");
    assert_eq!(stats.errors, cases.len() as u64);
    server.shutdown();
}

/// Pipelined requests on one keep-alive connection are answered strictly
/// in request order, each framed and carrying exactly one epoch header.
#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (model, held_out) = train_held_out();
    let expected = Classifier::new(model.clone())
        .classify(&held_out[0])
        .unwrap()
        .cluster;
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");
    let addr = server.addr();

    let mut stream = connect(addr);
    let batch = format!(
        "GET /model HTTP/1.1\r\nHost: t\r\n\r\n{}GET /stats HTTP/1.1\r\nHost: t\r\n\r\n",
        classify_request(&held_out[0])
    );
    stream.write_all(batch.as_bytes()).expect("send pipeline");

    // Response 1: /model (identified by its model-shape fields).
    let (head, body) = read_response(&mut stream).expect("first response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        json_field(&body, "k"),
        "2",
        "first answer is /model: {body}"
    );
    assert_eq!(head.matches("X-Model-Epoch:").count(), 1, "{head}");
    // Response 2: the classification.
    let (head, body) = read_response(&mut stream).expect("second response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(
        json_field(&body, "cluster"),
        expected.to_string(),
        "second answer is the classification: {body}"
    );
    // Response 3: /stats, which by now has seen all three requests.
    let (head, body) = read_response(&mut stream).expect("third response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "requests"), "3", "{body}");
    assert_eq!(json_field(&body, "connections"), "1", "{body}");
    assert_eq!(
        json_field(&body, "reused"),
        "1",
        "one connection served a second request: {body}"
    );

    server.shutdown();
}

/// A request delivered one byte at a time (worst-case packetization) is
/// buffered across readiness events and answered normally.
#[test]
fn byte_at_a_time_delivery_is_reassembled() {
    let (model, held_out) = train_held_out();
    let expected = Classifier::new(model.clone())
        .classify(&held_out[1])
        .unwrap()
        .cluster;
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");

    let mut stream = connect(server.addr());
    let raw = classify_request(&held_out[1]);
    for (i, chunk) in raw.as_bytes().chunks(1).enumerate() {
        stream.write_all(chunk).expect("trickle");
        // A few genuine pauses force the head and body across separate
        // readiness events without making the test crawl.
        if i % 97 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let (head, body) = read_response(&mut stream).expect("response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "cluster"), expected.to_string(), "{body}");
    server.shutdown();
}

/// Smuggling hygiene holds on a *reused* connection: a clean request
/// first, then a duplicate-Content-Length request on the same socket is
/// refused and the connection closed.
#[test]
fn duplicate_content_length_is_refused_on_a_reused_connection() {
    let (model, _) = train_held_out();
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");

    let mut stream = connect(server.addr());
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send clean");
    let (head, _) = read_response(&mut stream).expect("clean response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(header_field(&head, "Connection").eq_ignore_ascii_case("keep-alive"));

    stream
        .write_all(
            b"POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello",
        )
        .expect("send smuggle");
    let (head, body) = read_response(&mut stream).expect("refusal response");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("duplicate Content-Length"), "{body}");
    assert!(header_field(&head, "Connection").eq_ignore_ascii_case("close"));
    // And the close is real: the socket reaches EOF.
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("EOF after refusal");
    assert!(rest.is_empty(), "nothing after the refusal: {rest:?}");
    server.shutdown();
}

/// `Connection: close` mid-pipeline is honored: the close request is the
/// last one answered; anything pipelined behind it is never processed.
#[test]
fn connection_close_is_honored_mid_pipeline() {
    let (model, _) = train_held_out();
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");

    let mut stream = connect(server.addr());
    stream
        .write_all(
            b"GET /model HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\nGET /stats HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .expect("send");
    let (head, _) = read_response(&mut stream).expect("the close-flagged response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(header_field(&head, "Connection").eq_ignore_ascii_case("close"));
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "the pipelined /stats was never answered");

    let stats = server.stats();
    assert_eq!(stats.requests, 1, "the request behind the close is dropped");
    server.shutdown();
}

/// Disabling keep-alive server-side (`keep_alive: None`) closes every
/// connection after one response even without `Connection: close`.
#[test]
fn keep_alive_none_closes_after_every_response() {
    let (model, _) = train_held_out();
    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            keep_alive: None,
            ..ServeOptions::default()
        },
    )
    .expect("bind");

    let mut stream = connect(server.addr());
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send");
    let (head, _) = read_response(&mut stream).expect("response");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(header_field(&head, "Connection").eq_ignore_ascii_case("close"));
    let mut rest = String::new();
    stream.read_to_string(&mut rest).expect("EOF");
    assert!(rest.is_empty());
    server.shutdown();
}

/// The tentpole torture: client threads pipeline classifications over
/// keep-alive connections while the model is swapped 20 times through
/// *both* reload surfaces. Every response must arrive whole and in
/// order, carry exactly one `X-Model-Epoch`, and report the cluster the
/// model of that epoch assigns — and no connection may drop
/// mid-pipeline.
#[test]
fn keep_alive_pipelines_survive_twenty_hot_reloads() {
    let (model_a, docs) = train_held_out();
    let model_b = train_variant();

    let mut classifier_a = Classifier::new(model_a.clone());
    let mut classifier_b = Classifier::new(model_b.clone());
    let expected: Vec<(u32, u32)> = docs
        .iter()
        .map(|xml| {
            (
                classifier_a.classify(xml).unwrap().cluster,
                classifier_b.classify(xml).unwrap().cluster,
            )
        })
        .collect();

    let b_path = scratch_file("torture-b.cxkmodel");
    save_model_file(&model_b, &b_path).expect("write B");

    let server = Server::start(
        model_a.clone(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 4,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Epoch parity is the oracle: boot model A is epoch 1 and swaps
    // strictly alternate B, A, B, … so odd epochs serve A, even serve B.
    const CLIENTS: usize = 3;
    const ROUNDS: usize = 5;
    const PIPELINE: usize = 4;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let docs = docs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut stream = connect(addr);
                for round in 0..ROUNDS {
                    let mut batch = String::new();
                    for p in 0..PIPELINE {
                        batch.push_str(&classify_request(&docs[(c + round + p) % docs.len()]));
                    }
                    stream.write_all(batch.as_bytes()).expect("send pipeline");
                    for p in 0..PIPELINE {
                        let (head, body) = read_response(&mut stream)
                            .expect("no connection may drop mid-pipeline");
                        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                        assert_eq!(
                            head.matches("X-Model-Epoch:").count(),
                            1,
                            "exactly one epoch header: {head}"
                        );
                        let epoch: u64 =
                            header_field(&head, "X-Model-Epoch").parse().expect("epoch");
                        let i = (c + round + p) % docs.len();
                        let want = if epoch % 2 == 1 {
                            expected[i].0
                        } else {
                            expected[i].1
                        };
                        assert_eq!(
                            json_field(&body, "cluster"),
                            want.to_string(),
                            "epoch {epoch} must answer with its own model's cluster: {body}"
                        );
                    }
                }
            })
        })
        .collect();

    // Swap away while the clients hammer: even swaps POST B's snapshot
    // path, odd swaps push A back through the library API.
    const SWAPS: usize = 20;
    for i in 0..SWAPS {
        if i % 2 == 0 {
            let raw = format!(
                "POST /reload HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                b_path.to_str().unwrap().len(),
                b_path.to_str().unwrap()
            );
            let response = one_shot(addr, &raw);
            assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        } else {
            server.reload(model_a.clone());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    for client in clients {
        client
            .join()
            .expect("no client may observe a dropped or malformed response");
    }

    let stats = server.stats();
    let total = (CLIENTS * ROUNDS * PIPELINE) as u64;
    assert_eq!(stats.classified, total, "zero dropped classifications");
    assert_eq!(stats.errors, 0, "zero malformed responses");
    assert_eq!(stats.reloads, SWAPS as u64);
    assert_eq!(stats.epoch, 1 + SWAPS as u64);
    assert_eq!(
        stats.requests,
        total + SWAPS as u64 / 2,
        "every pipelined classify and every POSTed reload parsed"
    );
    assert_eq!(
        stats.connections,
        (CLIENTS + SWAPS / 2) as u64,
        "keep-alive: one connection per client, one per POSTed reload"
    );
    assert_eq!(
        stats.reused, CLIENTS as u64,
        "exactly the keep-alive clients reused their connections"
    );

    let _ = std::fs::remove_file(&b_path);
    server.shutdown();
}

/// Backpressure: with one deliberately slow worker and a two-slot queue,
/// a burst of classifications must be shed with `503` + parseable
/// `Retry-After`, the sheds must be counted in `/stats` (which itself
/// keeps answering inline while the queue is jammed), and once the storm
/// passes the queue drains back to `200`s.
#[test]
fn full_queue_sheds_with_retry_after_and_drains() {
    let (model, docs) = train_held_out();
    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 1,
            queue_depth: 2,
            worker_delay: Some(Duration::from_millis(200)),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    const STORM: usize = 10;
    let clients: Vec<_> = (0..STORM)
        .map(|i| {
            let xml = docs[i % docs.len()].clone();
            std::thread::spawn(move || {
                let raw = format!(
                    "POST /classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{xml}",
                    xml.len()
                );
                one_shot(addr, &raw)
            })
        })
        .collect();

    // While the worker is stalled and the queue jammed, the inline
    // /stats endpoint must still answer immediately.
    std::thread::sleep(Duration::from_millis(50));
    let jammed = one_shot(
        addr,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert!(
        jammed.starts_with("HTTP/1.1 200"),
        "/stats must answer while the queue is jammed: {jammed}"
    );
    let jammed_body = jammed.split("\r\n\r\n").nth(1).unwrap_or_default();
    assert_eq!(json_field(jammed_body, "queue_depth"), "2", "{jammed_body}");

    let mut oks = 0u64;
    let mut sheds = 0u64;
    for client in clients {
        let response = client.join().expect("storm client");
        if response.starts_with("HTTP/1.1 200") {
            oks += 1;
        } else if response.starts_with("HTTP/1.1 503") {
            let (head, body) = response.split_once("\r\n\r\n").expect("framed 503");
            let retry: u32 = header_field(head, "Retry-After")
                .parse()
                .expect("parseable Retry-After");
            assert!(retry >= 1, "a real backoff hint");
            assert!(body.contains("capacity"), "{body}");
            sheds += 1;
        } else {
            panic!("a storm request got neither 200 nor 503: {response}");
        }
    }
    assert_eq!(oks + sheds, STORM as u64);
    assert!(sheds >= 1, "a ten-request burst into depth 2 must shed");
    // At minimum the two queue slots fill before anything sheds; pops
    // racing the burst can only admit more.
    assert!(oks >= 2, "both queue slots must serve");

    // The sheds are visible in the counters…
    let stats = server.stats();
    assert_eq!(stats.rejected, sheds, "every 503 counted as rejected");
    assert_eq!(stats.classified, oks, "every 200 classified");

    // …and the queue has drained: the next classification is a 200.
    let after = one_shot(
        addr,
        &format!(
        "POST /classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        docs[0].len(),
        docs[0]
    ),
    );
    assert!(after.starts_with("HTTP/1.1 200"), "drained: {after}");
    let stats_body = one_shot(
        addr,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    let body = stats_body.split("\r\n\r\n").nth(1).unwrap_or_default();
    assert_eq!(json_field(body, "rejected"), sheds.to_string(), "{body}");
    assert_eq!(json_field(body, "queue_len"), "0", "drained queue: {body}");
    server.shutdown();
}

/// Service-time percentiles and the capped-document counter surface in
/// `GET /stats`, and a tuple-capped document is flagged in its own
/// response body.
#[test]
fn stats_report_service_percentiles_and_capped_documents() {
    let (model, held_out) = train_held_out();
    let server = Server::start(model, ("127.0.0.1", 0), ServeOptions::default()).expect("bind");
    let addr = server.addr();

    // A normal classification is answered uncapped…
    let clean = one_shot(
        addr,
        &format!(
            "POST /classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            held_out[0].len(),
            held_out[0]
        ),
    );
    assert!(clean.starts_with("HTTP/1.1 200"), "{clean}");
    assert!(clean.contains(r#""capped":false"#), "{clean}");

    // …then a document whose tuple enumeration overflows the default cap:
    // 17 label groups with 2 alternatives each is 2^17 = 131 072 tree
    // tuples against the 65 536 limit.
    let mut hostile = String::from("<r>");
    for g in 0..17 {
        hostile.push_str(&format!("<g{g}><x>a</x></g{g}><g{g}><x>b</x></g{g}>"));
    }
    hostile.push_str("</r>");
    let capped = one_shot(
        addr,
        &format!(
            "POST /classify HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{hostile}",
            hostile.len()
        ),
    );
    assert!(capped.starts_with("HTTP/1.1 200"), "{capped}");
    assert!(capped.contains(r#""capped":true"#), "{capped}");

    let stats = server.stats();
    assert_eq!(stats.classified, 2);
    assert_eq!(stats.capped, 1, "one of the two documents was truncated");
    assert!(
        stats.service_p999_micros >= stats.service_p50_micros,
        "percentiles must be monotone: {stats:?}"
    );

    let response = one_shot(
        addr,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    let body = response.split("\r\n\r\n").nth(1).unwrap_or_default();
    assert_eq!(json_field(body, "capped"), "1", "{body}");
    let p50: u64 = json_field(body, "service_p50_micros")
        .parse()
        .expect("numeric p50");
    let p99: u64 = json_field(body, "service_p99_micros")
        .parse()
        .expect("numeric p99");
    let p999: u64 = json_field(body, "service_p999_micros")
        .parse()
        .expect("numeric p999");
    assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
    server.shutdown();
}
