//! Shard-equivalence properties (ISSUE 5's acceptance criterion): over the
//! repository's `samples/` corpus and a grid of `(k, S, f, γ)`
//! configurations — including `γ = 0` (pruning disabled), `γ > 0`, empty
//! queries and `k < S` (degenerate shards) — sharded scatter/gather
//! assignment is **bit-identical** to brute force and to `S = 1`: cluster
//! ids, per-tuple similarities, document scores, and candidate counts.

use cxk_core::{CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::{Classifier, ShardedClassifier, ShardedEngine};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

/// The repository's `samples/` corpus.
fn sample_docs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("samples/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "xml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable sample");
            (name, text)
        })
        .collect()
}

fn train_on_samples(k: usize, f: f64, gamma: f64) -> TrainedModel {
    let docs = sample_docs();
    assert_eq!(docs.len(), 12, "samples corpus");
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for (_, text) in &docs {
        builder.add_xml(text).expect("valid sample");
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(f, gamma);
    config.seed = 1;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid sample config")
        .fit(&ds)
        .expect("fit succeeds")
        .into_model(&ds, BuildOptions::default())
}

/// Documents every configuration classifies: the full corpus, an alien, a
/// document with no leaf content, and an all-markup document whose tuples
/// carry empty TCUs — the degenerate query shapes the index falls back on.
fn probe_docs() -> Vec<(String, String)> {
    let mut docs = sample_docs();
    docs.push((
        "alien".into(),
        r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised seitan stew</dish></recipe></recipes>"#.into(),
    ));
    docs.push(("empty-root".into(), "<dblp/>".into()));
    docs.push((
        "empty-leaves".into(),
        "<dblp><article><title></title><author></author></article></dblp>".into(),
    ));
    docs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole invariant: for every `(k, S, f, γ)` drawn — with `γ`
    /// sometimes exactly 0 and `S` often exceeding `k` — the sharded
    /// engine's assignment of every probe document equals brute force and
    /// the single-shard engine bit-for-bit.
    #[test]
    fn sharded_equals_brute_and_single_shard_on_samples(
        k in 1usize..5,
        s in 1usize..9,
        f_step in 0u8..5,
        gamma_step in 0u8..5,
    ) {
        let f = f64::from(f_step) * 0.25;
        // gamma_step 0 is exactly γ = 0: pruning disabled everywhere.
        let gamma = f64::from(gamma_step) * 0.2;
        let model = Arc::new(train_on_samples(k, f, gamma));
        let mut brute = Classifier::shared(Arc::clone(&model));
        let mut single =
            ShardedClassifier::new(Arc::new(ShardedEngine::build(Arc::clone(&model), 1)));
        let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), s));
        prop_assert_eq!(engine.shard_count(), s);
        let mut sharded = ShardedClassifier::new(engine);

        for (name, text) in &probe_docs() {
            let a = sharded.classify(text).expect("sharded classify");
            let b = brute.classify_brute(text).expect("brute");
            let c = single.classify(text).expect("single shard");
            prop_assert_eq!(a.cluster, b.cluster, "cluster vs brute for {}", name);
            prop_assert_eq!(a.score, b.score, "score vs brute for {}", name);
            prop_assert_eq!(&a, &c, "S = {} vs S = 1 for {}", s, name);
            prop_assert_eq!(a.tuples.len(), b.tuples.len());
            for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
                prop_assert_eq!(ta.cluster, tb.cluster, "{}", name);
                prop_assert_eq!(ta.similarity, tb.similarity,
                    "simγJ must be bit-identical for {}", name);
                prop_assert!(ta.candidates <= tb.candidates,
                    "shards may only prune ({})", name);
            }
        }
    }

    /// Sharding repartitions the pruned candidate sets without changing
    /// them: per tuple, the scatter scores exactly as many representatives
    /// as the replicated index does.
    #[test]
    fn shard_pruning_matches_the_replicated_index(
        s in 2usize..9,
        gamma_step in 1u8..5,
    ) {
        let gamma = f64::from(gamma_step) * 0.2;
        let model = Arc::new(train_on_samples(3, 0.5, gamma));
        let mut replicated = Classifier::shared(Arc::clone(&model));
        let mut sharded =
            ShardedClassifier::new(Arc::new(ShardedEngine::build(Arc::clone(&model), s)));
        for (name, text) in &probe_docs() {
            let a = sharded.classify(text).expect("sharded");
            let b = replicated.classify(text).expect("replicated");
            for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
                prop_assert_eq!(ta.candidates, tb.candidates,
                    "scored-candidate counts must match for {}", name);
            }
        }
    }
}

/// Empty queries (documents with no tuples, or tuples whose TCUs are all
/// empty) must hit the documented fallbacks identically in every layout.
#[test]
fn degenerate_documents_agree_across_layouts() {
    for (k, s, gamma) in [(2, 5, 0.0), (2, 5, 0.6), (4, 3, 0.4), (1, 8, 0.9)] {
        let model = Arc::new(train_on_samples(k, 0.5, gamma));
        let mut brute = Classifier::shared(Arc::clone(&model));
        let mut sharded =
            ShardedClassifier::new(Arc::new(ShardedEngine::build(Arc::clone(&model), s)));
        for doc in [
            "<dblp/>",
            "<dblp><article/></dblp>",
            "<dblp><article><title></title></article></dblp>",
            "<unrelated><x><y></y></x></unrelated>",
        ] {
            let a = sharded.classify(doc).expect("sharded");
            let b = brute.classify_brute(doc).expect("brute");
            assert_eq!(a.cluster, b.cluster, "k={k} S={s} γ={gamma}: {doc}");
            assert_eq!(a.score, b.score, "k={k} S={s} γ={gamma}: {doc}");
            assert_eq!(a.tuples.len(), b.tuples.len());
        }
    }
}

/// `k < S` leaves surplus shards empty without disturbing assignment.
#[test]
fn degenerate_shards_cover_exactly_k_representatives() {
    let model = Arc::new(train_on_samples(2, 0.5, 0.5));
    let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), 8));
    let covered: usize = engine.shards().iter().map(|s| s.len()).sum();
    assert_eq!(covered, 2);
    assert_eq!(engine.shards().iter().filter(|s| s.is_empty()).count(), 6);
    let mut sharded = ShardedClassifier::new(engine);
    let mut brute = Classifier::shared(Arc::clone(&model));
    for (name, text) in &sample_docs() {
        let a = sharded.classify(text).expect("sharded");
        let b = brute.classify_brute(text).expect("brute");
        assert_eq!(a.cluster, b.cluster, "{name}");
        assert_eq!(a.score, b.score, "{name}");
    }
}
