//! Distributed scatter/gather equivalence (ISSUE 7's acceptance
//! criterion): over the repository's `samples/` corpus, classification
//! through real shard daemons on loopback TCP is **bit-identical** to the
//! in-process sharded engine and to brute force — including `γ = 0`
//! (pruning disabled), empty/alien queries, and `k < S` (daemons serving
//! empty ranges) — and killing a daemon mid-stream fails over to its
//! replica with an identical answer.

use cxk_core::{save_model, snapshot_digest, CxkConfig, EngineBuilder, TrainedModel};
use cxk_p2p::{FramedConn, PeerId};
use cxk_serve::remote::{ShardAnswer, ShardMsg};
use cxk_serve::{
    Classifier, RemoteClassifier, RemoteEngine, ShardDaemon, ShardedClassifier, ShardedEngine,
};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Generous per-shard deadline: loopback daemons answer in microseconds,
/// and a slow CI box must not flake the bit-identity assertions.
const DEADLINE: Duration = Duration::from_secs(10);

/// The repository's `samples/` corpus.
fn sample_docs() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("samples/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "xml"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&p).expect("readable sample");
            (name, text)
        })
        .collect()
}

fn train_on_samples(k: usize, f: f64, gamma: f64) -> TrainedModel {
    let docs = sample_docs();
    assert_eq!(docs.len(), 12, "samples corpus");
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for (_, text) in &docs {
        builder.add_xml(text).expect("valid sample");
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(f, gamma);
    config.seed = 1;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid sample config")
        .fit(&ds)
        .expect("fit succeeds")
        .into_model(&ds, BuildOptions::default())
}

/// The corpus plus the degenerate query shapes: an alien vocabulary, a
/// zero-tuple document (never touches the network), and all-empty TCUs.
fn probe_docs() -> Vec<(String, String)> {
    let mut docs = sample_docs();
    docs.push((
        "alien".into(),
        r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised seitan stew</dish></recipe></recipes>"#.into(),
    ));
    docs.push(("empty-root".into(), "<dblp/>".into()));
    docs.push((
        "empty-leaves".into(),
        "<dblp><article><title></title><author></author></article></dblp>".into(),
    ));
    docs
}

/// Starts one daemon per shard, partitioning `0..k` exactly like
/// `ShardedEngine::build` (`start = i·k/S`), on ephemeral loopback ports.
fn spawn_daemons(model: &Arc<TrainedModel>, s: usize) -> (Vec<ShardDaemon>, Vec<Vec<String>>) {
    let k = model.k();
    let mut daemons = Vec::with_capacity(s);
    let mut shards = Vec::with_capacity(s);
    for i in 0..s {
        let start = (i * k / s) as u32;
        let end = ((i + 1) * k / s) as u32;
        let daemon =
            ShardDaemon::start(Arc::clone(model), start..end, "127.0.0.1:0").expect("daemon");
        shards.push(vec![daemon.addr().to_string()]);
        daemons.push(daemon);
    }
    (daemons, shards)
}

/// The tentpole invariant: across `(k, S, γ)` configurations — with
/// `γ = 0` disabling pruning and `S > k` leaving daemons with empty
/// ranges — remote classification over real sockets equals the
/// in-process sharded engine and brute force bit-for-bit: cluster ids,
/// per-tuple similarities, document scores, and candidate counts.
#[test]
fn remote_equals_sharded_and_brute_on_samples() {
    for (k, s, gamma) in [
        (3usize, 2usize, 0.6),
        (2, 3, 0.0),
        (2, 5, 0.5),
        (4, 4, 0.8),
        (1, 2, 0.4),
    ] {
        let model = Arc::new(train_on_samples(k, 0.5, gamma));
        let (daemons, shards) = spawn_daemons(&model, s);
        let topology = Arc::new(RemoteEngine::new(shards, DEADLINE));
        let mut remote = RemoteClassifier::new(Arc::clone(&topology), Arc::clone(&model));
        let mut sharded =
            ShardedClassifier::new(Arc::new(ShardedEngine::build(Arc::clone(&model), s)));
        let mut brute = Classifier::shared(Arc::clone(&model));

        for (name, text) in &probe_docs() {
            let r = remote.classify(text).expect("remote classify");
            let a = sharded.classify(text).expect("sharded classify");
            let b = brute.classify_brute(text).expect("brute classify");
            assert_eq!(
                r, a,
                "remote vs in-process sharded for {name} (k={k} S={s} γ={gamma})"
            );
            assert_eq!(r.cluster, b.cluster, "{name}: cluster vs brute");
            assert_eq!(r.score, b.score, "{name}: score must be bit-identical");
            assert_eq!(r.tuples.len(), b.tuples.len(), "{name}");
            for (tr, tb) in r.tuples.iter().zip(&b.tuples) {
                assert_eq!(tr.cluster, tb.cluster, "{name}");
                assert_eq!(
                    tr.similarity, tb.similarity,
                    "{name}: simγJ must survive the wire bit-for-bit"
                );
            }
            // The remote brute path must agree with local brute force too.
            let rb = remote.classify_brute(text).expect("remote brute");
            assert_eq!(rb.cluster, b.cluster, "{name}: brute cluster");
            assert_eq!(rb.score, b.score, "{name}: brute score");
        }

        let stats = topology.shard_stats();
        assert_eq!(stats.len(), s);
        assert!(
            stats.iter().all(|st| st.requests > 0),
            "every shard slot answered scatters (k={k} S={s})"
        );
        assert!(
            stats.iter().all(|st| st.failovers == 0 && st.retries == 0),
            "healthy daemons never fail over"
        );
        assert!(stats.iter().all(|st| st.bytes > 0));
        // The fabric ledger metered both directions of real frames.
        assert!(topology.ledger().messages() > 0);
        assert!(topology.ledger().bytes() > 0);
        drop(daemons);
    }
}

/// Killing the primary daemon mid-stream: the next classify re-asks the
/// replica serving the same range, the answer is identical, and the
/// failover counter bumps.
#[test]
fn killed_daemon_fails_over_to_replica_with_identical_answer() {
    let model = Arc::new(train_on_samples(2, 0.5, 0.6));
    let primary = ShardDaemon::start(Arc::clone(&model), 0..1, "127.0.0.1:0").expect("primary");
    let replica = ShardDaemon::start(Arc::clone(&model), 0..1, "127.0.0.1:0").expect("replica");
    let other = ShardDaemon::start(Arc::clone(&model), 1..2, "127.0.0.1:0").expect("other");
    let topology = Arc::new(RemoteEngine::new(
        vec![
            vec![primary.addr().to_string(), replica.addr().to_string()],
            vec![other.addr().to_string()],
        ],
        DEADLINE,
    ));
    let mut remote = RemoteClassifier::new(Arc::clone(&topology), Arc::clone(&model));
    let mut brute = Classifier::shared(Arc::clone(&model));

    let docs = sample_docs();
    let before: Vec<_> = docs
        .iter()
        .map(|(_, text)| remote.classify(text).expect("classify via primary"))
        .collect();
    assert_eq!(topology.shard_stats()[0].failovers, 0);

    // Kill the primary: its accept loop and connection handlers exit and
    // the frontend's established connection goes dead.
    primary.shutdown();

    for (i, (name, text)) in docs.iter().enumerate() {
        let after = remote.classify(text).expect("classify via replica");
        let reference = brute.classify_brute(text).expect("brute");
        assert_eq!(
            after, before[i],
            "{name}: the replica's answer must be identical"
        );
        assert_eq!(after.cluster, reference.cluster, "{name}");
        assert_eq!(after.score, reference.score, "{name}");
    }

    let stats = topology.shard_stats();
    assert!(
        stats[0].failovers >= 1,
        "the failover counter must record the replica switch"
    );
    assert!(stats[0].retries >= 1, "the re-ask was counted");
    assert_eq!(stats[1].failovers, 0, "the healthy shard never failed over");
}

/// A dead first replica (nothing listening) is skipped on the very first
/// classify: the slot fails over to its live replica and still answers
/// bit-identically.
#[test]
fn dead_first_replica_is_skipped_on_first_contact() {
    let model = Arc::new(train_on_samples(2, 0.5, 0.5));
    // Bind-then-drop to get a loopback port with nothing listening.
    let dead = {
        let sock = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        sock.local_addr().expect("addr").to_string()
    };
    let live0 = ShardDaemon::start(Arc::clone(&model), 0..1, "127.0.0.1:0").expect("live0");
    let live1 = ShardDaemon::start(Arc::clone(&model), 1..2, "127.0.0.1:0").expect("live1");
    let topology = Arc::new(RemoteEngine::new(
        vec![
            vec![dead, live0.addr().to_string()],
            vec![live1.addr().to_string()],
        ],
        DEADLINE,
    ));
    let mut remote = RemoteClassifier::new(Arc::clone(&topology), Arc::clone(&model));
    let mut brute = Classifier::shared(Arc::clone(&model));
    for (name, text) in &sample_docs() {
        let r = remote.classify(text).expect("remote");
        let b = brute.classify_brute(text).expect("brute");
        assert_eq!(r.cluster, b.cluster, "{name}");
        assert_eq!(r.score, b.score, "{name}");
    }
    let stats = topology.shard_stats();
    assert!(stats[0].failovers >= 1, "answered by the second replica");
    assert!(stats[0].requests > 0);
}

/// An impostor daemon: handshakes like a genuine shard (correct digest,
/// `k`, and range) but answers every scatter with a **wrong sequence
/// number** and poisoned similarities. If the frontend ever accepted its
/// ack, the winning cluster would be 0 with an absurd score — so passing
/// the bit-identity assertions below proves stale/mismatched replies are
/// rejected and failed over, never consumed.
fn spawn_wrong_seq_impostor(
    model: &Arc<TrainedModel>,
    start: u32,
    end: u32,
) -> (String, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind impostor");
    let addr = listener.local_addr().expect("addr").to_string();
    let digest = snapshot_digest(&save_model(model)).expect("digest");
    let k = model.k() as u32;
    let handle = std::thread::spawn(move || {
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        let Ok(mut conn) = FramedConn::<ShardMsg>::new(stream, PeerId(u32::MAX), None) else {
            return;
        };
        loop {
            let Ok((envelope, _)) = conn.recv_timeout(Duration::from_secs(10)) else {
                return;
            };
            conn.set_id(envelope.to);
            let reply = match envelope.payload {
                ShardMsg::Hello => ShardMsg::HelloAck {
                    digest,
                    k,
                    start,
                    end,
                },
                ShardMsg::Scatter { seq, tuples, .. } => ShardMsg::ScatterAck {
                    seq: seq.wrapping_add(99),
                    answers: tuples
                        .iter()
                        .map(|_| ShardAnswer {
                            sim_bits: f64::MAX.to_bits(),
                            id: 0,
                            scored: 1,
                        })
                        .collect(),
                },
                _ => return,
            };
            if conn.send(envelope.from, &reply).is_err() {
                return;
            }
        }
    });
    (addr, handle)
}

/// A reply whose `seq` does not match the outstanding request is treated
/// as a failure: the frontend drops the connection, fails over to the
/// honest replica of the same range, and the answer stays bit-identical
/// to brute force.
#[test]
fn wrong_seq_answer_is_rejected_and_fails_over() {
    let model = Arc::new(train_on_samples(2, 0.5, 0.6));
    let (impostor_addr, impostor) = spawn_wrong_seq_impostor(&model, 0, 1);
    let honest = ShardDaemon::start(Arc::clone(&model), 0..1, "127.0.0.1:0").expect("honest");
    let other = ShardDaemon::start(Arc::clone(&model), 1..2, "127.0.0.1:0").expect("other");
    let topology = Arc::new(RemoteEngine::new(
        vec![
            vec![impostor_addr, honest.addr().to_string()],
            vec![other.addr().to_string()],
        ],
        DEADLINE,
    ));
    let mut remote = RemoteClassifier::new(Arc::clone(&topology), Arc::clone(&model));
    let mut brute = Classifier::shared(Arc::clone(&model));
    for (name, text) in &sample_docs() {
        let r = remote.classify(text).expect("remote");
        let b = brute.classify_brute(text).expect("brute");
        assert_eq!(r.cluster, b.cluster, "{name}: poisoned ack must not win");
        assert_eq!(r.score, b.score, "{name}: score must stay bit-identical");
    }
    let stats = topology.shard_stats();
    assert!(
        stats[0].failovers >= 1,
        "the wrong-seq reply must force a failover to the honest replica"
    );
    assert!(stats[0].retries >= 1, "the re-ask was counted");
    drop(remote);
    impostor.join().expect("impostor thread");
}

/// A daemon must refuse to serve a range that is not a sub-range of the
/// model's `0..k`.
#[test]
fn daemon_rejects_out_of_bounds_range() {
    let model = Arc::new(train_on_samples(2, 0.5, 0.5));
    let err = ShardDaemon::start(Arc::clone(&model), 1..5, "127.0.0.1:0")
        .err()
        .expect("out-of-bounds range must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    // An inverted range (start > end) is rejected the same way; built
    // from variables so the literal-range lint does not (rightly) object.
    let (hi, lo) = (2u32, 1u32);
    let err = ShardDaemon::start(Arc::clone(&model), hi..lo, "127.0.0.1:0")
        .err()
        .expect("inverted range must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
}
