//! Sharded scatter/gather classification: the representative set
//! partitioned across shards, one shared immutable index per model epoch.
//!
//! The replicated strategy (`crate::classify::Classifier`) gives every
//! worker its own full `TagPathIndex`, duplicating the postings `threads`
//! times and capping the representative set at what one worker's memory
//! holds. This module mirrors the paper's decomposition on the serving
//! side instead: the `k` representatives are partitioned into `S`
//! contiguous **shards**, each owning the postings slice and candidate
//! pruning for its id range. A query *scatters* to every shard, each shard
//! answers its local `(simγJ, id)` argmax over its pruned candidates, and
//! a *gather* step takes the global argmax — after which assignment
//! assembly (trash rule, document aggregation) is exactly the code the
//! replicated path runs.
//!
//! # Why the gather is provably bit-identical to brute force
//!
//! Brute force scans representatives `0..k` in ascending id order keeping
//! the strictly-greatest `simγJ`, so the winner is the **lowest id among
//! the maxima**; a tuple whose best similarity is 0 falls to trash. The
//! sharded path preserves that exactly:
//!
//! * shards cover contiguous, disjoint, ascending id ranges whose union is
//!   `0..k`;
//! * within a shard, candidates are scanned ascending with the same strict
//!   `>`, so the shard's answer is the lowest-id maximum of its range —
//!   and per-shard pruning is the same provably sound rule the full index
//!   uses (a pruned representative has `simγJ = 0`, which can never win);
//! * the gather scans shard answers in shard (= id) order with the same
//!   strict `>`, so ties across shards resolve to the lower id, and a
//!   global best of 0 falls to trash exactly as before.
//!
//! Degenerate configurations need no special casing: `γ = 0` and empty
//! queries make each shard fall back to scoring its whole range (summing
//! to the brute-force candidate count `k`), and `k < S` simply leaves the
//! surplus shards empty (their scatter returns trash at similarity 0,
//! which never wins the gather).
//!
//! # Memory model
//!
//! A [`ShardedEngine`] is immutable once built and lives behind an `Arc`
//! shared by the whole worker pool: **one** postings set per model epoch,
//! however many threads serve it. Hot reload builds the next epoch's
//! engine off-lock and swaps the `Arc` atomically (see the `slot`
//! module), so in-flight queries keep scattering over the engine they
//! started with. Each worker's mutable parsing state lives in its own
//! [`ShardedClassifier`] (a `QuerySession`), which holds interner copies
//! but no postings — that is what makes resident index memory ~constant
//! in the worker count.
//!
//! The shards of this engine run in-process today; the scatter loop is the
//! seam a cross-process transport would replace (see `ROADMAP.md`,
//! "Async transport").

use crate::classify::{
    aggregate_document, argmax_tuple, DocumentAssignment, QuerySession, TupleAssignment,
};
use crate::index::{Candidates, TagPathIndex};
use cxk_core::rep::RepItem;
use cxk_core::TrainedModel;
use cxk_transact::item::ItemView;
use cxk_xml::parser::XmlError;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One shard: a contiguous slice of the global representative id space
/// plus the inverted index over exactly those representatives.
#[derive(Debug)]
pub struct Shard {
    /// Global representative ids this shard owns.
    range: Range<u32>,
    /// Postings over the owned range (global ids; see
    /// [`TagPathIndex::build_range`]).
    index: TagPathIndex,
}

impl Shard {
    /// Global representative ids this shard owns.
    pub fn range(&self) -> Range<u32> {
        self.range.clone()
    }

    /// Representatives owned.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the shard owns no representatives (`k < S`).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// The shard's index (diagnostics).
    pub fn index(&self) -> &TagPathIndex {
        &self.index
    }
}

/// Monotonic per-shard counters, updated by every scatter. Padded to a
/// cache line: adjacent shards' counters must not share one, or the
/// relaxed `fetch_add`s every worker issues per tuple would ping-pong the
/// line across cores and tax exactly the hot path sharding exists to
/// speed up.
#[derive(Debug, Default)]
#[repr(align(64))]
struct ShardCounters {
    /// Tuples scattered to this shard.
    queries: AtomicU64,
    /// Representatives actually scored (after pruning).
    scored: AtomicU64,
}

/// A point-in-time copy of one shard's counters plus its static shape,
/// surfaced per shard by `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Representatives owned by the shard.
    pub reps: usize,
    /// Posting entries in the shard's index.
    pub postings: usize,
    /// Tuples scattered to the shard so far.
    pub queries: u64,
    /// Representatives the shard actually scored (its pruned candidates).
    pub scored: u64,
}

/// The shared, immutable scatter/gather engine for one model epoch.
pub struct ShardedEngine {
    model: Arc<TrainedModel>,
    shards: Vec<Shard>,
    counters: Vec<ShardCounters>,
}

impl ShardedEngine {
    /// Partitions `model`'s `k` representatives into `shards` contiguous
    /// near-equal ranges (shard `i` owns `[⌊i·k/S⌋, ⌊(i+1)·k/S⌋)`) and
    /// builds each shard's index. `shards` is clamped to ≥ 1; `k < S`
    /// leaves the surplus shards empty.
    pub fn build(model: Arc<TrainedModel>, shards: usize) -> Self {
        let s = shards.max(1);
        let k = model.k();
        let shards: Vec<Shard> = (0..s)
            .map(|i| {
                let start = i * k / s;
                let end = (i + 1) * k / s;
                let index = TagPathIndex::build_range(
                    &model.reps[start..end],
                    &model.paths,
                    model.params,
                    start as u32,
                );
                Shard {
                    range: start as u32..end as u32,
                    index,
                }
            })
            .collect();
        let counters = shards.iter().map(|_| ShardCounters::default()).collect();
        Self {
            model,
            shards,
            counters,
        }
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// Number of shards (including empty ones when `k < S`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in ascending id-range order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Total posting entries across all shards.
    pub fn posting_entries(&self) -> usize {
        self.shards.iter().map(|s| s.index.posting_entries()).sum()
    }

    /// Estimated resident postings bytes across all shards — the memory
    /// the whole worker pool shares per epoch (compare with the replicated
    /// layout's per-worker copy; see `TagPathIndex::postings_bytes`).
    pub fn postings_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.index.postings_bytes()).sum()
    }

    /// Per-shard statistics since this engine (epoch) was built.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .zip(&self.counters)
            .map(|(shard, c)| ShardStats {
                reps: shard.len(),
                postings: shard.index.posting_entries(),
                queries: c.queries.load(Ordering::Relaxed),
                scored: c.scored.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Scatter/gather for one query transaction: every shard reports its
    /// local argmax over its (pruned, unless `!indexed`) candidates, and
    /// the gather keeps the global argmax under the brute-force tie-break.
    fn assign_tuple(
        &self,
        session: &QuerySession,
        views: &[ItemView<'_>],
        rep_views: &[Vec<ItemView<'_>>],
        indexed: bool,
    ) -> TupleAssignment {
        let k = self.model.k() as u32;
        let ctx = session.sim_ctx(self.model.params);
        let mut best_j = k;
        let mut best_s = 0.0f64;
        let mut scored_total = 0usize;
        for (shard, counters) in self.shards.iter().zip(&self.counters) {
            if shard.is_empty() {
                continue;
            }
            let candidates = if indexed {
                shard.index.candidates(views, session.paths())
            } else {
                Candidates::All
            };
            let scored = candidates.len(shard.len());
            let (local_j, local_s) =
                argmax_tuple(&ctx, views, rep_views, candidates.ids_in(shard.range()), k);
            counters.queries.fetch_add(1, Ordering::Relaxed);
            counters.scored.fetch_add(scored as u64, Ordering::Relaxed);
            scored_total += scored;
            // Shards ascend, so a strict `>` resolves cross-shard ties to
            // the lower id — exactly the brute-force scan order.
            if local_s > best_s {
                best_s = local_s;
                best_j = local_j;
            }
        }
        let cluster = if best_s == 0.0 { k } else { best_j };
        TupleAssignment {
            cluster,
            similarity: best_s,
            candidates: scored_total,
        }
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("k", &self.model.k())
            .field("shards", &self.shards.len())
            .field("postings", &self.posting_entries())
            .finish()
    }
}

/// A per-worker classification session over a shared [`ShardedEngine`]:
/// the worker's own mutable `QuerySession` (interners, tag-path
/// similarity table) plus an `Arc` of the epoch's engine. Building one is
/// cheap — no postings are copied — which is what a hot reload amortizes
/// across the pool.
pub struct ShardedClassifier {
    engine: Arc<ShardedEngine>,
    session: QuerySession,
}

impl ShardedClassifier {
    /// Builds a worker session over `engine`.
    pub fn new(engine: Arc<ShardedEngine>) -> Self {
        let session = QuerySession::new(engine.model());
        Self { engine, session }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<ShardedEngine> {
        &self.engine
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        self.engine.model()
    }

    /// Number of proper clusters `k`.
    pub fn k(&self) -> usize {
        self.model().k()
    }

    /// The trash cluster's id (`k`).
    pub fn trash_id(&self) -> u32 {
        self.model().trash_id()
    }

    /// Classifies one XML document by scattering each tuple across the
    /// shards and gathering the global argmax.
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, true)
    }

    /// Classifies one XML document scoring every representative in every
    /// shard (the reference the pruned scatter must agree with).
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify_brute(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, false)
    }

    fn classify_impl(&mut self, xml: &str, indexed: bool) -> Result<DocumentAssignment, XmlError> {
        let model = self.engine.model();
        let query = self.session.extract(xml, &model.term_stats)?;
        let rep_views: Vec<Vec<ItemView<'_>>> = model.reps.iter().map(|r| r.views()).collect();
        let assignments = query
            .transactions
            .iter()
            .map(|tuple| {
                let views: Vec<ItemView<'_>> = tuple.iter().map(RepItem::view).collect();
                self.engine
                    .assign_tuple(&self.session, &views, &rep_views, indexed)
            })
            .collect();
        Ok(aggregate_document(model.k(), assignments, query.capped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use cxk_core::{CxkConfig, EngineBuilder};
    use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

    fn doc(topic: usize, i: usize) -> String {
        let topics = [
            ("mining", "mining frequent patterns clustering trees"),
            ("network", "routing congestion protocols networks"),
            ("theory", "automata complexity reductions proofs"),
            ("systems", "kernels scheduling caches concurrency"),
        ];
        let (key, title) = topics[topic % topics.len()];
        format!(
            r#"<dblp><article key="{key}{i}"><author>A. {key}</author><title>{title} {key}{i}</title><journal>J{topic}</journal></article></dblp>"#,
        )
    }

    fn model(k: usize, gamma: f64) -> TrainedModel {
        let mut builder = DatasetBuilder::new(BuildOptions::default());
        for topic in 0..4 {
            for i in 0..4 {
                builder.add_xml(&doc(topic, i)).unwrap();
            }
        }
        let ds = builder.finish();
        let mut config = CxkConfig::new(k);
        config.params = SimParams::new(0.5, gamma);
        config.seed = 5;
        EngineBuilder::from_cxk_config(&config)
            .build()
            .expect("valid test config")
            .fit(&ds)
            .expect("fit succeeds")
            .into_model(&ds, BuildOptions::default())
    }

    fn assert_same(a: &DocumentAssignment, b: &DocumentAssignment, what: &str) {
        assert_eq!(a.cluster, b.cluster, "{what}: cluster");
        assert_eq!(a.score, b.score, "{what}: score must be bit-identical");
        assert_eq!(a.tuples.len(), b.tuples.len(), "{what}");
        for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
            assert_eq!(ta.cluster, tb.cluster, "{what}");
            assert_eq!(ta.similarity, tb.similarity, "{what}");
        }
    }

    #[test]
    fn partition_covers_all_representatives_exactly_once() {
        for (k, s) in [(1, 1), (4, 2), (5, 3), (2, 8), (7, 7), (3, 1)] {
            let engine = ShardedEngine::build(Arc::new(model(k, 0.5)), s);
            assert_eq!(engine.shard_count(), s);
            let mut next = 0u32;
            for shard in engine.shards() {
                assert_eq!(shard.range().start, next, "contiguous k={k} S={s}");
                next = shard.range().end;
                assert_eq!(shard.index().covered(), shard.range());
            }
            assert_eq!(next as usize, k, "union is 0..k for k={k} S={s}");
        }
    }

    #[test]
    fn sharded_matches_replicated_and_brute_bit_for_bit() {
        for gamma in [0.0, 0.5] {
            let model = Arc::new(model(4, gamma));
            let mut replicated = Classifier::shared(Arc::clone(&model));
            for s in [1, 2, 3, 8] {
                let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), s));
                let mut sharded = ShardedClassifier::new(Arc::clone(&engine));
                for topic in 0..4 {
                    let xml = doc(topic, 17);
                    let scatter = sharded.classify(&xml).expect("sharded");
                    let brute = replicated.classify_brute(&xml).expect("brute");
                    let indexed = replicated.classify(&xml).expect("indexed");
                    assert_same(&scatter, &brute, &format!("γ={gamma} S={s} vs brute"));
                    assert_same(&scatter, &indexed, &format!("γ={gamma} S={s} vs indexed"));
                    // Candidate counts match the replicated index too: the
                    // shard postings are a disjoint partition of the global
                    // postings.
                    for (ta, tb) in scatter.tuples.iter().zip(&indexed.tuples) {
                        assert_eq!(ta.candidates, tb.candidates, "γ={gamma} S={s}");
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_shards_and_aliens_fall_through_to_trash() {
        let model = Arc::new(model(2, 0.6));
        // k = 2 over 8 shards: six shards are empty.
        let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), 8));
        assert_eq!(engine.shards().iter().filter(|s| s.is_empty()).count(), 6);
        let mut sharded = ShardedClassifier::new(Arc::clone(&engine));
        let report = sharded
            .classify(r#"<menu><entree id="e1"><flavor>umami</flavor></entree></menu>"#)
            .expect("classify");
        assert_eq!(report.cluster, sharded.trash_id());
        assert_eq!(report.score, 0.0);
        assert!(report.tuples.iter().all(|t| t.candidates == 0));
    }

    #[test]
    fn shard_stats_count_scatters() {
        let model = Arc::new(model(4, 0.5));
        let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), 2));
        let mut sharded = ShardedClassifier::new(Arc::clone(&engine));
        let report = sharded.classify(&doc(0, 3)).expect("classify");
        let tuples = report.tuples.len() as u64;
        assert!(tuples > 0);
        let stats = engine.shard_stats();
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert_eq!(s.queries, tuples, "every tuple scatters to every shard");
        }
        let scored: u64 = stats.iter().map(|s| s.scored).sum();
        let candidates: u64 = report.tuples.iter().map(|t| t.candidates as u64).sum();
        assert_eq!(scored, candidates);
        assert_eq!(
            stats.iter().map(|s| s.reps).sum::<usize>(),
            4,
            "stats cover every representative"
        );
    }

    #[test]
    fn sessions_share_one_engine() {
        let model = Arc::new(model(3, 0.5));
        let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), 4));
        let a = ShardedClassifier::new(Arc::clone(&engine));
        let b = ShardedClassifier::new(Arc::clone(&engine));
        assert!(std::ptr::eq(&**a.engine(), &**b.engine()));
        assert!(engine.posting_entries() > 0);
        assert!(engine.postings_bytes() > 0);
    }
}
