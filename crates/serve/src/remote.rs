//! Distributed scatter/gather serving: shard daemons and the remote
//! classify engine, over the `cxk_p2p` framed TCP fabric.
//!
//! This module pushes the in-process transport seam of [`crate::shard`]
//! across process boundaries. The decomposition is unchanged — shards own
//! contiguous, disjoint, ascending representative ranges and exchange only
//! `(simγJ, id, scored)` triples — but the shards now live in **other
//! processes**, each serving its range of a `.cxkmodel` behind a TCP
//! listener ([`ShardDaemon`]), while the frontend scatters every query
//! tuple to all daemons and gathers their local argmaxes
//! ([`RemoteClassifier`], held by the [`crate::ClassifyEngine::Remote`]
//! arm).
//!
//! # Why bit-identity survives the wire
//!
//! The in-process sharded path is bit-identical to brute force because
//! shards see the *same* query views and representatives, and the gather
//! re-applies the exact argmax/tie-break/trash rules (see the `shard`
//! module docs). The wire adds one risk — reconstructing the query on the
//! far side — and the protocol removes it:
//!
//! * **Same model on both ends.** Frontend and daemon each load the full
//!   `.cxkmodel`; the handshake compares snapshot digests, so interners
//!   and path tables start as identical clones.
//! * **Raw symbols, not strings.** Each item ships its tag path as the
//!   frontend's label-symbol `u32` sequence and its vector as raw
//!   `(term symbol, f64 bit pattern)` pairs. Model symbols mean the same
//!   thing on both ends (same model); novel query symbols (`≥` the model's
//!   interner sizes) cannot collide with model symbols, and equality
//!   *among themselves* is preserved because one worker owns one
//!   connection per shard, so a connection only ever sees one session's
//!   numbering. Structural and content similarity depend only on those
//!   equalities.
//! * **Exact vectors.** Query vectors are built by `SparseVec::from_pairs`
//!   (sorted, deduplicated, zero weights dropped), so re-running
//!   `from_pairs` over the shipped `(symbol, bits)` pairs reproduces the
//!   vector bit-for-bit — no floating-point arithmetic happens in transit,
//!   and weights are computed once, on the frontend.
//! * **Unchanged gather.** Daemons run the same
//!   [`argmax_tuple`](crate::classify) over their range (strict `>`,
//!   lowest id wins ties); the frontend gathers in ascending range order
//!   with the same strict `>` and declares trash exactly when the global
//!   best is `0.0`.
//!
//! # Failover contract
//!
//! Every shard slot is a replica set. Each request gets a per-shard
//! deadline; on timeout, disconnect, or a protocol error the frontend
//! drops that connection (after a timeout the abandoned answer may still
//! arrive and would be stale) and re-asks the *next* replica of the same
//! range, wrapping around at most once over the set. Only when every
//! replica has failed does the request surface the last error — a
//! [`NetworkError::Timeout`] stays typed all the way out — and on any
//! error exit every connection with an unread reply in flight is dropped
//! too. Stale answers are structurally impossible either way: every
//! `Scatter` carries a sequence number its `ScatterAck` must echo.
//! Counters:
//! `retries` counts every re-ask, `failovers` counts answers obtained from
//! a different replica than first tried, `requests` counts successful
//! answers, `bytes` counts frame bytes both directions, and `rtt_micros`
//! accumulates scatter round-trip time.

use crate::classify::{
    aggregate_document, argmax_tuple, ClassifyError, DocumentAssignment, QuerySession,
    TupleAssignment,
};
use crate::index::{Candidates, TagPathIndex};
use cxk_core::{save_model, snapshot_digest, TrainedModel};
use cxk_p2p::{FramedConn, NetworkError, PeerId, TrafficLedger, Wire, WireCodec, WireReader};
use cxk_text::SparseVec;
use cxk_transact::item::ItemView;
use cxk_transact::{SimCtx, TagPathSimTable};
use cxk_util::{FxHashSet, Symbol};
use cxk_xml::path::{PathId, PathTable};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The frontend's peer id in the serving fabric; shard `i`'s daemon is
/// peer `i + 1`.
pub const FRONTEND: PeerId = PeerId(0);

/// How often daemon connection handlers wake to check the shutdown flag.
const DAEMON_POLL: Duration = Duration::from_millis(200);

/// One query item on the wire: everything a daemon needs to rebuild the
/// frontend's [`ItemView`] exactly (see the module docs for why this is
/// lossless).
#[derive(Debug, Clone, PartialEq)]
pub struct WireItem {
    /// The tag path as the frontend's label-symbol sequence.
    pub tag_path: Vec<u32>,
    /// The `ttf.itf` vector as raw `(term symbol, f64 bit pattern)` pairs
    /// in sorted term order.
    pub terms: Vec<(u32, u64)>,
    /// The item's identity fingerprint, verbatim.
    pub fingerprint: u64,
}

/// One query transaction (tree tuple) on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTuple {
    /// The tuple's deduplicated items, in extraction order.
    pub items: Vec<WireItem>,
}

/// One shard's verdict for one tuple: its local argmax triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAnswer {
    /// Bit pattern of the winning `simγJ` (`0.0` when nothing matched).
    pub sim_bits: u64,
    /// Winning representative id (global numbering; the trash id when
    /// nothing in this shard's range scored above zero).
    pub id: u32,
    /// Representatives this shard actually scored (post index pruning).
    pub scored: u32,
}

/// The shard-serving protocol: a tiny request/response vocabulary spoken
/// over [`FramedConn`].
#[derive(Debug, Clone, PartialEq)]
pub enum ShardMsg {
    /// Frontend → daemon: open a session, ask who you are.
    Hello,
    /// Daemon → frontend: model snapshot digest, cluster count, and the
    /// served representative range — everything the frontend validates.
    HelloAck {
        /// Digest of the daemon's loaded model snapshot.
        digest: u64,
        /// The daemon's `k` (proper cluster count).
        k: u32,
        /// Start of the served representative range (inclusive).
        start: u32,
        /// End of the served representative range (exclusive).
        end: u32,
    },
    /// Frontend → daemon: score these tuples against your range.
    Scatter {
        /// Request sequence number, echoed in the ack. Lets the frontend
        /// reject an answer to an *earlier* request that was still in
        /// flight on a reused connection (e.g. after a sibling shard's
        /// failure aborted a scatter mid-gather).
        seq: u64,
        /// Skip index pruning and score the whole range (brute force).
        brute: bool,
        /// The document's tuples, one entry per tree tuple.
        tuples: Vec<WireTuple>,
    },
    /// Daemon → frontend: one answer per scattered tuple, in order.
    ScatterAck {
        /// The sequence number of the [`ShardMsg::Scatter`] being answered.
        seq: u64,
        /// The per-tuple local argmax triples.
        answers: Vec<ShardAnswer>,
    },
    /// Daemon → frontend: the request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

const TAG_HELLO: u8 = 0;
const TAG_HELLO_ACK: u8 = 1;
const TAG_SCATTER: u8 = 2;
const TAG_SCATTER_ACK: u8 = 3;
const TAG_ERROR: u8 = 4;

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Bounded pre-allocation for length-prefixed vectors: trust the claimed
/// length only up to a small cap; pushes grow the rest honestly.
fn capped_capacity(len: usize) -> usize {
    len.min(4096)
}

impl WireItem {
    fn encoded_len(&self) -> usize {
        4 + 4 * self.tag_path.len() + 4 + 12 * self.terms.len() + 8
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.tag_path.len() as u32);
        for &label in &self.tag_path {
            put_u32(buf, label);
        }
        put_u32(buf, self.terms.len() as u32);
        for &(term, bits) in &self.terms {
            put_u32(buf, term);
            put_u64(buf, bits);
        }
        put_u64(buf, self.fingerprint);
    }

    fn decode(r: &mut WireReader<'_>) -> Option<Self> {
        let path_len = r.u32()? as usize;
        let mut tag_path = Vec::with_capacity(capped_capacity(path_len));
        for _ in 0..path_len {
            tag_path.push(r.u32()?);
        }
        let term_len = r.u32()? as usize;
        let mut terms = Vec::with_capacity(capped_capacity(term_len));
        for _ in 0..term_len {
            let term = r.u32()?;
            let bits = r.u64()?;
            terms.push((term, bits));
        }
        let fingerprint = r.u64()?;
        Some(Self {
            tag_path,
            terms,
            fingerprint,
        })
    }
}

impl Wire for ShardMsg {
    fn wire_size(&self) -> usize {
        match self {
            ShardMsg::Hello => 1,
            ShardMsg::HelloAck { .. } => 1 + 8 + 4 + 4 + 4,
            ShardMsg::Scatter { tuples, .. } => {
                1 + 8
                    + 1
                    + 4
                    + tuples
                        .iter()
                        .map(|t| 4 + t.items.iter().map(WireItem::encoded_len).sum::<usize>())
                        .sum::<usize>()
            }
            ShardMsg::ScatterAck { answers, .. } => 1 + 8 + 4 + 16 * answers.len(),
            ShardMsg::Error { message } => 1 + 4 + message.len(),
        }
    }
}

impl WireCodec for ShardMsg {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ShardMsg::Hello => buf.push(TAG_HELLO),
            ShardMsg::HelloAck {
                digest,
                k,
                start,
                end,
            } => {
                buf.push(TAG_HELLO_ACK);
                put_u64(buf, *digest);
                put_u32(buf, *k);
                put_u32(buf, *start);
                put_u32(buf, *end);
            }
            ShardMsg::Scatter { seq, brute, tuples } => {
                buf.push(TAG_SCATTER);
                put_u64(buf, *seq);
                buf.push(u8::from(*brute));
                put_u32(buf, tuples.len() as u32);
                for tuple in tuples {
                    put_u32(buf, tuple.items.len() as u32);
                    for item in &tuple.items {
                        item.encode(buf);
                    }
                }
            }
            ShardMsg::ScatterAck { seq, answers } => {
                buf.push(TAG_SCATTER_ACK);
                put_u64(buf, *seq);
                put_u32(buf, answers.len() as u32);
                for answer in answers {
                    put_u64(buf, answer.sim_bits);
                    put_u32(buf, answer.id);
                    put_u32(buf, answer.scored);
                }
            }
            ShardMsg::Error { message } => {
                buf.push(TAG_ERROR);
                put_u32(buf, message.len() as u32);
                buf.extend_from_slice(message.as_bytes());
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut r = WireReader::new(bytes);
        let msg = match r.u8()? {
            TAG_HELLO => ShardMsg::Hello,
            TAG_HELLO_ACK => ShardMsg::HelloAck {
                digest: r.u64()?,
                k: r.u32()?,
                start: r.u32()?,
                end: r.u32()?,
            },
            TAG_SCATTER => {
                let seq = r.u64()?;
                let brute = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return None,
                };
                let tuple_len = r.u32()? as usize;
                let mut tuples = Vec::with_capacity(capped_capacity(tuple_len));
                for _ in 0..tuple_len {
                    let item_len = r.u32()? as usize;
                    let mut items = Vec::with_capacity(capped_capacity(item_len));
                    for _ in 0..item_len {
                        items.push(WireItem::decode(&mut r)?);
                    }
                    tuples.push(WireTuple { items });
                }
                ShardMsg::Scatter { seq, brute, tuples }
            }
            TAG_SCATTER_ACK => {
                let seq = r.u64()?;
                let len = r.u32()? as usize;
                let mut answers = Vec::with_capacity(capped_capacity(len));
                for _ in 0..len {
                    answers.push(ShardAnswer {
                        sim_bits: r.u64()?,
                        id: r.u32()?,
                        scored: r.u32()?,
                    });
                }
                ShardMsg::ScatterAck { seq, answers }
            }
            TAG_ERROR => {
                let len = r.u32()? as usize;
                let message = String::from_utf8(r.bytes(len)?.to_vec()).ok()?;
                ShardMsg::Error { message }
            }
            _ => return None,
        };
        r.is_exhausted().then_some(msg)
    }
}

/// The daemon side of a [`QuerySession`]: a private path-table clone plus
/// the lazily extended structural-similarity table, maintained under the
/// same cap/eviction policy so `sim_S` lookups cover rep × query pairs.
/// One per connection — a connection only ever sees one frontend worker's
/// symbol numbering, which keeps shipped novel symbols consistent.
struct RangeSession {
    paths: PathTable,
    tag_sim: TagPathSimTable,
    base_tag_paths: Vec<PathId>,
    known_tag_paths: FxHashSet<PathId>,
    cap: usize,
}

impl RangeSession {
    fn new(model: &TrainedModel) -> Self {
        let base = model.rep_tag_paths();
        let tag_sim = TagPathSimTable::build(&base, &model.paths);
        Self {
            paths: model.paths.clone(),
            tag_sim,
            known_tag_paths: base.iter().copied().collect(),
            cap: (base.len() * 4).max(1024),
            base_tag_paths: base,
        }
    }

    /// Interns the shipped tuples into this session's tables and rebuilds
    /// the similarity table when new tag paths arrived — mirroring
    /// `QuerySession::extract`'s maintenance, minus the parsing (the
    /// frontend already did that).
    #[allow(clippy::type_complexity)]
    fn intern_tuples(&mut self, tuples: &[WireTuple]) -> Vec<Vec<(PathId, SparseVec, u64)>> {
        let mut fresh = false;
        let mut request_paths: Vec<PathId> = Vec::new();
        let decoded: Vec<Vec<(PathId, SparseVec, u64)>> = tuples
            .iter()
            .map(|tuple| {
                tuple
                    .items
                    .iter()
                    .map(|item| {
                        let labels: Vec<Symbol> =
                            item.tag_path.iter().map(|&raw| Symbol(raw)).collect();
                        let tag_path = self.paths.intern(&labels);
                        request_paths.push(tag_path);
                        fresh |= self.known_tag_paths.insert(tag_path);
                        let pairs: Vec<(Symbol, f64)> = item
                            .terms
                            .iter()
                            .map(|&(term, bits)| (Symbol(term), f64::from_bits(bits)))
                            .collect();
                        (tag_path, SparseVec::from_pairs(pairs), item.fingerprint)
                    })
                    .collect()
            })
            .collect();
        if fresh {
            if self.known_tag_paths.len() > self.cap {
                self.known_tag_paths = self.base_tag_paths.iter().copied().collect();
                self.known_tag_paths.extend(request_paths.iter().copied());
            }
            let mut all: Vec<PathId> = self.known_tag_paths.iter().copied().collect();
            all.sort_unstable();
            self.tag_sim = TagPathSimTable::build(&all, &self.paths);
        }
        decoded
    }
}

/// State shared between the daemon's accept loop and its handlers.
struct DaemonShared {
    model: Arc<TrainedModel>,
    range: Range<u32>,
    index: TagPathIndex,
    digest: u64,
    shutdown: AtomicBool,
}

/// A running shard daemon: serves one contiguous representative range of a
/// trained model over framed TCP, answering [`ShardMsg::Scatter`] requests
/// with its local argmax triples.
///
/// Dropping the daemon shuts it down (flag + join); [`ShardDaemon::join`]
/// blocks the caller instead (the CLI's foreground mode).
pub struct ShardDaemon {
    addr: SocketAddr,
    shared: Arc<DaemonShared>,
    accept: Option<JoinHandle<()>>,
}

impl ShardDaemon {
    /// Binds `listen` and starts serving `range` of `model`.
    ///
    /// # Errors
    /// I/O errors from binding, plus `InvalidInput` when `range` is not a
    /// sub-range of `0..k`.
    pub fn start(
        model: Arc<TrainedModel>,
        range: Range<u32>,
        listen: &str,
    ) -> std::io::Result<Self> {
        let k = model.k() as u32;
        if range.start > range.end || range.end > k {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "range {}..{} is not a sub-range of 0..{k}",
                    range.start, range.end
                ),
            ));
        }
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let index = TagPathIndex::build_range(
            &model.reps[range.start as usize..range.end as usize],
            &model.paths,
            model.params,
            range.start,
        );
        let digest = snapshot_digest(&save_model(&model)).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "model snapshot digest unavailable",
            )
        })?;
        let shared = Arc::new(DaemonShared {
            model,
            range: range.clone(),
            index,
            digest,
            shutdown: AtomicBool::new(false),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name(format!("cxk-shard-{}-{}", range.start, range.end))
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound listen address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The representative range this daemon serves.
    pub fn range(&self) -> Range<u32> {
        self.shared.range.clone()
    }

    /// Signals shutdown and waits for the accept loop and all connection
    /// handlers to exit.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Blocks until the daemon exits (it only does on [`shutdown`] from
    /// another handle or process death) — the CLI's foreground mode.
    ///
    /// [`shutdown`]: ShardDaemon::shutdown
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ShardDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<DaemonShared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::Acquire) {
        // Reap finished handlers so a long-lived daemon facing redials
        // (failover drops connections by design) does not accumulate
        // handles and dead threads without bound.
        let mut i = 0;
        while i < handlers.len() {
            if handlers[i].is_finished() {
                let _ = handlers.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                if let Ok(handle) = thread::Builder::new()
                    .name("cxk-shard-conn".into())
                    .spawn(move || handle_conn(stream, &conn_shared))
                {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One connection's serve loop: adopt the dialer's numbering, answer
/// handshakes and scatters until hangup or shutdown.
fn handle_conn(stream: TcpStream, shared: &DaemonShared) {
    // A failed fcntl means the socket is already dead; dropping the
    // connection (instead of panicking this handler thread) lets the
    // frontend's failover path take over.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    // Daemons meter nothing: the frontend's ledger records both
    // directions (sends at send time, replies at receive time), so each
    // frame is counted exactly once fabric-wide.
    let Ok(mut conn) = FramedConn::<ShardMsg>::new(stream, PeerId(u32::MAX), None) else {
        return;
    };
    let mut session = RangeSession::new(&shared.model);
    let rep_views: Vec<Vec<ItemView<'_>>> = shared.model.reps.iter().map(|r| r.views()).collect();
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // `recv_timeout` is resumable: a poll-interval timeout keeps any
        // partially received frame buffered on the connection, so looping
        // here is safe even while a large Scatter is dripping in.
        let envelope = match conn.recv_timeout(DAEMON_POLL) {
            Ok((envelope, _)) => envelope,
            Err(NetworkError::Timeout) => continue,
            Err(_) => return,
        };
        conn.set_id(envelope.to);
        let reply = match envelope.payload {
            ShardMsg::Hello => ShardMsg::HelloAck {
                digest: shared.digest,
                k: shared.model.k() as u32,
                start: shared.range.start,
                end: shared.range.end,
            },
            ShardMsg::Scatter { seq, brute, tuples } => ShardMsg::ScatterAck {
                seq,
                answers: answer_scatter(shared, &mut session, &rep_views, brute, &tuples),
            },
            other => ShardMsg::Error {
                message: format!("unexpected request: {other:?}"),
            },
        };
        if conn.send(envelope.from, &reply).is_err() {
            return;
        }
    }
}

/// Scores shipped tuples against this daemon's range — the remote half of
/// `ShardedEngine::assign_tuple`, answer triples instead of shared memory.
fn answer_scatter(
    shared: &DaemonShared,
    session: &mut RangeSession,
    rep_views: &[Vec<ItemView<'_>>],
    brute: bool,
    tuples: &[WireTuple],
) -> Vec<ShardAnswer> {
    let decoded = session.intern_tuples(tuples);
    let ctx = SimCtx::new(&session.tag_sim, shared.model.params);
    let trash = shared.model.trash_id();
    let range_len = (shared.range.end - shared.range.start) as usize;
    decoded
        .iter()
        .map(|items| {
            let views: Vec<ItemView<'_>> = items
                .iter()
                .map(|(tag_path, vector, fingerprint)| ItemView {
                    tag_path: *tag_path,
                    vector,
                    fingerprint: *fingerprint,
                })
                .collect();
            let candidates = if brute {
                Candidates::All
            } else {
                shared.index.candidates(&views, &session.paths)
            };
            let scored = candidates.len(range_len) as u32;
            let (id, sim) = argmax_tuple(
                &ctx,
                &views,
                rep_views,
                candidates.ids_in(shared.range.clone()),
                trash,
            );
            ShardAnswer {
                sim_bits: sim.to_bits(),
                id,
                scored,
            }
        })
        .collect()
}

/// Per-shard network counters, cache-line separated like the in-process
/// shard counters.
#[repr(align(64))]
#[derive(Debug, Default)]
struct ShardNetCounters {
    requests: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    bytes: AtomicU64,
    rtt_micros: AtomicU64,
}

/// A point-in-time snapshot of one remote shard's counters, surfaced by
/// `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteShardStats {
    /// Replica addresses configured for this shard slot.
    pub replicas: usize,
    /// Successful scatter answers.
    pub requests: u64,
    /// Re-asks after a failure (every retry attempt, successful or not).
    pub retries: u64,
    /// Answers obtained from a different replica than first tried.
    pub failovers: u64,
    /// Frame bytes exchanged with this shard, both directions.
    pub bytes: u64,
    /// Accumulated scatter round-trip time, in microseconds.
    pub rtt_micros: u64,
}

/// The shared, immutable half of remote serving: the shard topology
/// (replica sets in ascending range order), the per-request deadline, the
/// per-shard counters, and the fabric's traffic ledger. Lives outside the
/// model epoch — counters and topology survive hot reloads.
pub struct RemoteEngine {
    shards: Vec<Vec<String>>,
    deadline: Duration,
    counters: Vec<ShardNetCounters>,
    ledger: Arc<TrafficLedger>,
}

impl RemoteEngine {
    /// Builds the topology. `shards[i]` is shard slot `i`'s replica set —
    /// daemons that all serve the *same* representative range (validated
    /// at handshake time); slots must be configured in ascending range
    /// order (validated on first use).
    ///
    /// # Panics
    /// When `shards` is empty or any replica set is empty.
    pub fn new(shards: Vec<Vec<String>>, deadline: Duration) -> Self {
        assert!(
            !shards.is_empty(),
            "remote topology needs at least one shard"
        );
        assert!(
            shards.iter().all(|replicas| !replicas.is_empty()),
            "every shard slot needs at least one replica address"
        );
        let counters = shards.iter().map(|_| ShardNetCounters::default()).collect();
        let ledger = Arc::new(TrafficLedger::new(shards.len() + 1));
        Self {
            shards,
            deadline,
            counters,
            ledger,
        }
    }

    /// Number of shard slots.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard request deadline.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The fabric's traffic ledger (frontend is peer 0, shard `i`'s
    /// daemon is peer `i + 1`).
    pub fn ledger(&self) -> &Arc<TrafficLedger> {
        &self.ledger
    }

    /// Snapshots every shard's counters.
    pub fn shard_stats(&self) -> Vec<RemoteShardStats> {
        self.shards
            .iter()
            .zip(&self.counters)
            .map(|(replicas, c)| RemoteShardStats {
                replicas: replicas.len(),
                requests: c.requests.load(Ordering::Relaxed),
                retries: c.retries.load(Ordering::Relaxed),
                failovers: c.failovers.load(Ordering::Relaxed),
                bytes: c.bytes.load(Ordering::Relaxed),
                rtt_micros: c.rtt_micros.load(Ordering::Relaxed),
            })
            .collect()
    }
}

/// The per-worker remote classify strategy: extracts query tuples locally
/// (the session owns the interners), scatters them to every shard daemon,
/// and gathers the per-range argmaxes under the unchanged brute-force
/// tie-break/trash rules.
///
/// Connections are dialed lazily and kept per shard slot; on failure the
/// classifier walks the slot's replica set (see the module docs for the
/// failover contract).
pub struct RemoteClassifier {
    engine: Arc<RemoteEngine>,
    model: Arc<TrainedModel>,
    /// Digest of the frontend's model snapshot; `None` when serialization
    /// failed, in which case the handshake refuses every replica rather
    /// than silently matching (a digest can't be fabricated as 0 on both
    /// sides).
    digest: Option<u64>,
    session: QuerySession,
    conns: Vec<Option<FramedConn<ShardMsg>>>,
    /// Replica index currently backing each slot's connection.
    cursor: Vec<usize>,
    /// Ranges learned from handshakes, validated for contiguity.
    ranges: Vec<Option<Range<u32>>>,
    coverage_ok: bool,
    /// Next scatter sequence number; echoed by daemons so a reply to an
    /// earlier, abandoned request can never be taken for the current one.
    next_seq: u64,
}

impl RemoteClassifier {
    /// Builds a classifier over the shared topology and model. Cheap: no
    /// connections are dialed until the first classify.
    pub fn new(engine: Arc<RemoteEngine>, model: Arc<TrainedModel>) -> Self {
        let session = QuerySession::new(&model);
        let digest = snapshot_digest(&save_model(&model));
        let shards = engine.shard_count();
        Self {
            engine,
            model,
            digest,
            session,
            conns: (0..shards).map(|_| None).collect(),
            cursor: vec![0; shards],
            ranges: vec![None; shards],
            coverage_ok: false,
            next_seq: 0,
        }
    }

    /// The shared topology.
    pub fn engine(&self) -> &Arc<RemoteEngine> {
        &self.engine
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// Classifies one XML document, letting each daemon prune with its
    /// range index.
    ///
    /// # Errors
    /// [`ClassifyError::Xml`] on parse failure; [`ClassifyError::Network`]
    /// / [`ClassifyError::Remote`] when a shard's whole replica set failed.
    /// The classifier stays usable either way.
    pub fn classify(&mut self, xml: &str) -> Result<DocumentAssignment, ClassifyError> {
        self.classify_impl(xml, true)
    }

    /// Classifies one XML document with every daemon scoring its whole
    /// range (the reference the indexed path must agree with).
    ///
    /// # Errors
    /// As [`RemoteClassifier::classify`].
    pub fn classify_brute(&mut self, xml: &str) -> Result<DocumentAssignment, ClassifyError> {
        self.classify_impl(xml, false)
    }

    fn classify_impl(
        &mut self,
        xml: &str,
        indexed: bool,
    ) -> Result<DocumentAssignment, ClassifyError> {
        let query = self
            .session
            .extract(xml, &self.model.term_stats)
            .map_err(ClassifyError::Xml)?;
        let tuples = query.transactions;
        let k = self.model.k();
        if tuples.is_empty() {
            // Nothing to score: the document is trash without consulting
            // the network, exactly like the in-process paths.
            return Ok(aggregate_document(k, Vec::new(), query.capped));
        }

        let wire_tuples: Vec<WireTuple> = tuples
            .iter()
            .map(|tuple| WireTuple {
                items: tuple
                    .iter()
                    .map(|item| WireItem {
                        tag_path: self
                            .session
                            .paths()
                            .resolve(item.tag_path)
                            .iter()
                            .map(|label| label.0)
                            .collect(),
                        terms: item
                            .vector
                            .iter()
                            .map(|(term, weight)| (term.0, weight.to_bits()))
                            .collect(),
                        fingerprint: item.fingerprint,
                    })
                    .collect(),
            })
            .collect();
        let seq = self.next_seq;
        self.next_seq += 1;
        let request = ShardMsg::Scatter {
            seq,
            brute: !indexed,
            tuples: wire_tuples,
        };

        let per_shard = self.scatter(&request, seq, tuples.len())?;

        let trash = k as u32;
        let mut assignments = Vec::with_capacity(tuples.len());
        for t in 0..tuples.len() {
            let mut best_j = trash;
            let mut best_s = 0.0f64;
            let mut scored = 0usize;
            // Slots ascend by range (coverage-checked), so strict `>`
            // keeps the lowest winning id — the brute-force tie-break.
            for answers in &per_shard {
                let answer = &answers[t];
                scored += answer.scored as usize;
                let sim = f64::from_bits(answer.sim_bits);
                if sim > best_s {
                    best_s = sim;
                    best_j = answer.id;
                }
            }
            let cluster = if best_s == 0.0 { trash } else { best_j };
            assignments.push(TupleAssignment {
                cluster,
                similarity: best_s,
                candidates: scored,
            });
        }
        Ok(aggregate_document(k, assignments, query.capped))
    }

    /// Scatters `request` to every shard and collects one answer vector
    /// per slot, failing over within each slot's replica set.
    ///
    /// On an error return no connection is left with a reply in flight:
    /// any shard whose answer was never read has its connection dropped,
    /// so the next classify can never pair a stale `ScatterAck` with a new
    /// request (the `seq` echo guards the same hazard independently).
    fn scatter(
        &mut self,
        request: &ShardMsg,
        seq: u64,
        n_tuples: usize,
    ) -> Result<Vec<Vec<ShardAnswer>>, ClassifyError> {
        let shards = self.engine.shard_count();
        // Send to every shard before receiving from any, so daemons score
        // their ranges in parallel.
        let mut first_replica = Vec::with_capacity(shards);
        let mut pending: Vec<Option<Instant>> = Vec::with_capacity(shards);
        for shard in 0..shards {
            first_replica.push(self.cursor[shard]);
            let sent = self
                .dial_current(shard)
                .and_then(|()| self.send_request(shard, request));
            match sent {
                Ok(t0) => pending.push(Some(t0)),
                Err(_) => {
                    self.fail_shard(shard);
                    pending.push(None);
                }
            }
        }
        let result = self.gather(request, seq, n_tuples, &mut pending, &first_replica);
        if result.is_err() {
            for (shard, in_flight) in pending.iter().enumerate() {
                if in_flight.is_some() {
                    // Unread reply on the wire: the connection is not
                    // reusable for a fresh request.
                    self.conns[shard] = None;
                }
            }
        }
        result
    }

    /// The gather half of [`scatter`](RemoteClassifier::scatter): consumes
    /// `pending` entries (clearing each as its shard resolves) and fails
    /// over within each slot's replica set.
    fn gather(
        &mut self,
        request: &ShardMsg,
        seq: u64,
        n_tuples: usize,
        pending: &mut [Option<Instant>],
        first_replica: &[usize],
    ) -> Result<Vec<Vec<ShardAnswer>>, ClassifyError> {
        let shards = self.engine.shard_count();
        let mut results = Vec::with_capacity(shards);
        for shard in 0..shards {
            let answers = match pending[shard].take() {
                Some(t0) => match self.finish_recv(shard, t0, seq, n_tuples) {
                    Ok(answers) => answers,
                    Err(_) => {
                        self.fail_shard(shard);
                        self.retry_shard(shard, request, seq, n_tuples, first_replica[shard])?
                    }
                },
                None => self.retry_shard(shard, request, seq, n_tuples, first_replica[shard])?,
            };
            results.push(answers);
        }
        self.check_coverage()?;
        Ok(results)
    }

    /// Walks the slot's replica set once, re-asking until one answers.
    fn retry_shard(
        &mut self,
        shard: usize,
        request: &ShardMsg,
        seq: u64,
        n_tuples: usize,
        first_replica: usize,
    ) -> Result<Vec<ShardAnswer>, ClassifyError> {
        let replicas = self.engine.shards[shard].len();
        let mut last = ClassifyError::Network(NetworkError::Disconnected);
        for _ in 0..replicas {
            self.engine.counters[shard]
                .retries
                .fetch_add(1, Ordering::Relaxed);
            let attempt = self
                .dial_current(shard)
                .and_then(|()| self.send_request(shard, request))
                .and_then(|t0| self.finish_recv(shard, t0, seq, n_tuples));
            match attempt {
                Ok(answers) => {
                    if self.cursor[shard] != first_replica {
                        self.engine.counters[shard]
                            .failovers
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(answers);
                }
                Err(e) => {
                    last = e;
                    self.fail_shard(shard);
                }
            }
        }
        Err(last)
    }

    /// Drops the slot's connection and advances to the next replica.
    fn fail_shard(&mut self, shard: usize) {
        self.conns[shard] = None;
        let replicas = self.engine.shards[shard].len();
        self.cursor[shard] = (self.cursor[shard] + 1) % replicas;
    }

    /// Ensures a live, handshake-validated connection to the slot's
    /// current replica.
    fn dial_current(&mut self, shard: usize) -> Result<(), ClassifyError> {
        if self.conns[shard].is_some() {
            return Ok(());
        }
        let addr = self.engine.shards[shard][self.cursor[shard]].clone();
        let deadline = self.engine.deadline;
        let sock_addr = addr
            .to_socket_addrs()
            .ok()
            .and_then(|mut addrs| addrs.next())
            .ok_or_else(|| {
                ClassifyError::Remote(format!("shard {shard}: unresolvable address {addr}"))
            })?;
        let stream = TcpStream::connect_timeout(&sock_addr, deadline).map_err(|e| {
            ClassifyError::Network(match e.kind() {
                std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                    NetworkError::Timeout
                }
                _ => NetworkError::Disconnected,
            })
        })?;
        let mut conn = FramedConn::new(stream, FRONTEND, Some(Arc::clone(&self.engine.ledger)))
            .map_err(|_| ClassifyError::Network(NetworkError::Disconnected))?;
        let to = PeerId(shard as u32 + 1);
        let sent = conn
            .send(to, &ShardMsg::Hello)
            .map_err(ClassifyError::Network)?;
        self.engine.counters[shard]
            .bytes
            .fetch_add(sent as u64, Ordering::Relaxed);
        let (envelope, got) = conn
            .recv_timeout(deadline)
            .map_err(ClassifyError::Network)?;
        self.engine.ledger.record(to, FRONTEND, got);
        self.engine.counters[shard]
            .bytes
            .fetch_add(got as u64, Ordering::Relaxed);
        match envelope.payload {
            ShardMsg::HelloAck {
                digest,
                k,
                start,
                end,
            } => {
                let expected = self.digest.ok_or_else(|| {
                    ClassifyError::Remote(format!(
                        "shard {shard}: frontend model snapshot digest unavailable, \
                         cannot validate replica {addr}"
                    ))
                })?;
                if digest != expected {
                    return Err(ClassifyError::Remote(format!(
                        "shard {shard}: replica {addr} serves a different model snapshot \
                         (digest {digest:#018x}, frontend has {expected:#018x})"
                    )));
                }
                if k as usize != self.model.k() {
                    return Err(ClassifyError::Remote(format!(
                        "shard {shard}: replica {addr} has k = {k}, frontend has k = {}",
                        self.model.k()
                    )));
                }
                let range = start..end;
                if let Some(known) = &self.ranges[shard] {
                    if *known != range {
                        return Err(ClassifyError::Remote(format!(
                            "shard {shard}: replica {addr} serves {start}..{end} but its \
                             peers serve {}..{}",
                            known.start, known.end
                        )));
                    }
                } else {
                    self.ranges[shard] = Some(range);
                }
                self.conns[shard] = Some(conn);
                Ok(())
            }
            ShardMsg::Error { message } => {
                Err(ClassifyError::Remote(format!("shard {shard}: {message}")))
            }
            _ => Err(ClassifyError::Remote(format!(
                "shard {shard}: unexpected handshake reply"
            ))),
        }
    }

    /// Sends `request` on the slot's live connection, returning the send
    /// completion instant (the RTT clock's zero).
    fn send_request(&mut self, shard: usize, request: &ShardMsg) -> Result<Instant, ClassifyError> {
        let to = PeerId(shard as u32 + 1);
        // The caller dials before sending, so a missing connection means
        // it was torn down by a failed earlier exchange: surface it as a
        // disconnect so the failover path re-dials a replica.
        let Some(conn) = self.conns[shard].as_mut() else {
            return Err(ClassifyError::Network(NetworkError::Disconnected));
        };
        let sent = conn.send(to, request).map_err(ClassifyError::Network)?;
        self.engine.counters[shard]
            .bytes
            .fetch_add(sent as u64, Ordering::Relaxed);
        Ok(Instant::now())
    }

    /// Receives and validates one scatter answer within the deadline. An
    /// ack whose `seq` is not the current request's is a stale reply to an
    /// abandoned scatter — rejected, which drops the connection via the
    /// caller's failover path.
    fn finish_recv(
        &mut self,
        shard: usize,
        t0: Instant,
        seq: u64,
        n_tuples: usize,
    ) -> Result<Vec<ShardAnswer>, ClassifyError> {
        let deadline = self.engine.deadline;
        // Same contract as `send_request`: no live connection reads as a
        // disconnect, not a panic, so the worker thread survives.
        let Some(conn) = self.conns[shard].as_mut() else {
            return Err(ClassifyError::Network(NetworkError::Disconnected));
        };
        let (envelope, got) = conn
            .recv_timeout(deadline)
            .map_err(ClassifyError::Network)?;
        self.engine
            .ledger
            .record(PeerId(shard as u32 + 1), FRONTEND, got);
        self.engine.counters[shard]
            .bytes
            .fetch_add(got as u64, Ordering::Relaxed);
        match envelope.payload {
            ShardMsg::ScatterAck {
                seq: got_seq,
                answers,
            } if got_seq == seq && answers.len() == n_tuples => {
                self.engine.counters[shard]
                    .requests
                    .fetch_add(1, Ordering::Relaxed);
                self.engine.counters[shard]
                    .rtt_micros
                    .fetch_add(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
                Ok(answers)
            }
            ShardMsg::ScatterAck { seq: got_seq, .. } if got_seq != seq => {
                Err(ClassifyError::Remote(format!(
                    "shard {shard}: stale answer (seq {got_seq}, expected {seq})"
                )))
            }
            ShardMsg::ScatterAck { answers, .. } => Err(ClassifyError::Remote(format!(
                "shard {shard}: {} answers for {n_tuples} tuples",
                answers.len()
            ))),
            ShardMsg::Error { message } => {
                Err(ClassifyError::Remote(format!("shard {shard}: {message}")))
            }
            _ => Err(ClassifyError::Remote(format!(
                "shard {shard}: unexpected reply to scatter"
            ))),
        }
    }

    /// Validates, once, that the learned ranges are contiguous, ascending
    /// by slot, and cover exactly `0..k` — the preconditions the gather's
    /// tie-break correctness rests on.
    fn check_coverage(&mut self) -> Result<(), ClassifyError> {
        if self.coverage_ok {
            return Ok(());
        }
        let k = self.model.k() as u32;
        let mut next = 0u32;
        for (shard, range) in self.ranges.iter().enumerate() {
            let range = range.as_ref().ok_or_else(|| {
                ClassifyError::Remote(format!("shard {shard}: range never learned"))
            })?;
            if range.start != next {
                return Err(ClassifyError::Remote(format!(
                    "shard ranges are not contiguous: shard {shard} serves {}..{} but \
                     {next}.. was expected",
                    range.start, range.end
                )));
            }
            next = range.end;
        }
        if next != k {
            return Err(ClassifyError::Remote(format!(
                "shard ranges cover 0..{next} but the model has k = {k}"
            )));
        }
        self.coverage_ok = true;
        Ok(())
    }
}
