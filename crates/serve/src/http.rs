//! A minimal multi-threaded HTTP/1.1 classification server.
//!
//! No external dependencies: `std::net::TcpListener` accepts connections
//! and hands them to a fixed pool of worker threads over a
//! `crossbeam-channel`; each worker owns its **own** [`Classifier`] built
//! from the shared model, so request handling is lock-free (the classifier
//! needs `&mut self` because its interners grow with unseen markup — per
//! the `classify` module docs that growth never changes scores).
//!
//! Endpoints (responses are JSON, `Connection: close`):
//!
//! * `POST /classify` — body: one XML document, **or** a JSON array of XML
//!   document strings (batch classification, amortizing connection and
//!   parse overhead for bulk scoring). A single document answers `200`
//!   with its cluster, score and per-tuple assignments (`400` on malformed
//!   XML); a batch answers `200` with a JSON array holding one assignment
//!   object — or a per-document `{"error": …}` object — per input, in
//!   order.
//! * `GET /model` — model metadata (k, parameters, sizes).
//! * `GET /stats` — server counters (requests, classifications, errors,
//!   trash rate) and index diagnostics.
//!
//! The protocol subset is deliberately tiny: request line + headers,
//! `Content-Length` bodies only (no chunked encoding, no keep-alive). The
//! point is a dependency-free serving path whose throughput the
//! `serve_throughput` bench bin can measure; a production transport is a
//! ROADMAP item.

use crate::classify::{Classifier, DocumentAssignment};
use cxk_core::{TrainedModel, MODEL_FORMAT_VERSION};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on accepted request bodies (64 MiB), so a hostile
/// `Content-Length` cannot exhaust memory.
const MAX_BODY_BYTES: u64 = 64 << 20;

/// Upper bound on the request line plus all headers (16 KiB). Without it a
/// client sending an endless header stream would grow worker memory
/// without bound — `MAX_BODY_BYTES` only constrains the declared body.
const MAX_HEAD_BYTES: usize = 16 << 10;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (each with its own classifier). Clamped to ≥ 1.
    pub threads: usize,
    /// Score every representative instead of consulting the index
    /// (diagnostics / benchmarking the index's benefit).
    pub brute_force: bool,
    /// Per-connection read/write timeout. An idle or trickling client
    /// would otherwise pin its worker forever (and block shutdown).
    pub io_timeout: std::time::Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            brute_force: false,
            io_timeout: std::time::Duration::from_secs(10),
        }
    }
}

/// Monotonic server counters, shared by all workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// HTTP requests accepted (including malformed ones).
    pub requests: AtomicU64,
    /// Successful classifications.
    pub classified: AtomicU64,
    /// Classifications that landed in the trash cluster.
    pub trash: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
}

/// A running classification server.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `("127.0.0.1", 0)` for an ephemeral port) and
    /// starts the acceptor plus `opts.threads` workers.
    ///
    /// # Errors
    /// Returns the bind error.
    pub fn start(
        model: TrainedModel,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let threads = opts.threads.max(1);

        let (tx, rx) = crossbeam_channel::unbounded::<TcpStream>();
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = rx.clone();
            let model = model.clone();
            let stats = Arc::clone(&stats);
            let brute = opts.brute_force;
            let io_timeout = opts.io_timeout;
            workers.push(std::thread::spawn(move || {
                let mut classifier = Classifier::new(model);
                while let Ok(stream) = rx.recv() {
                    // A slow or idle client must not pin this worker: cap
                    // every read and write. Zero would mean "no timeout"
                    // to the socket API, so clamp it away.
                    let timeout = Some(io_timeout.max(std::time::Duration::from_millis(1)));
                    let _ = stream.set_read_timeout(timeout);
                    let _ = stream.set_write_timeout(timeout);
                    handle_connection(stream, &mut classifier, &stats, brute);
                }
            }));
        }
        drop(rx);

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Workers all exited only after tx is dropped; a
                        // send can't fail while this loop runs.
                        let _ = tx.send(stream);
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
        };

        Ok(Server {
            addr,
            shutdown,
            stats,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the counters: `(requests, classified, trash, errors)`.
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (
            self.stats.requests.load(Ordering::Relaxed),
            self.stats.classified.load(Ordering::Relaxed),
            self.stats.trash.load(Ordering::Relaxed),
            self.stats.errors.load(Ordering::Relaxed),
        )
    }

    /// Blocks until the server shuts down (for a foreground `cxk serve`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut down) server stops accepting.
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Parsed request head.
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Reads one `\n`-terminated line, failing once the head budget is spent —
/// `BufReader::read_line` alone would buffer a newline-free byte stream
/// without bound.
fn read_line_capped(
    reader: &mut impl BufRead,
    budget: &mut usize,
    what: &str,
) -> Result<String, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if *budget == 0 {
                    return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(format!("read {what}: {e}")),
        }
    }
    String::from_utf8(line).map_err(|_| format!("{what} is not UTF-8"))
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body).
fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut budget = MAX_HEAD_BYTES;
    let line = read_line_capped(&mut reader, &mut budget, "request line")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".into());
    }

    let mut content_length = 0u64;
    loop {
        let header = read_line_capped(&mut reader, &mut budget, "header")?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body exceeds {MAX_BODY_BYTES} bytes"));
    }

    let mut body = vec![0u8; content_length as usize];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request { method, path, body })
}

fn respond(stream: &mut TcpStream, status: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the CLI's `--jsonl`
/// output so every JSON the workspace emits escapes identically.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON array of strings — the batch `POST /classify` body — with
/// a dependency-free cursor. Accepts exactly `[ "s1", "s2", … ]` with the
/// standard string escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`, including
/// surrogate pairs); anything else is an error naming the byte offset.
fn parse_json_string_array(body: &str) -> Result<Vec<String>, String> {
    let bytes = body.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if pos >= bytes.len() || bytes[pos] != b'[' {
        return Err(format!("batch body must be a JSON array (byte {pos})"));
    }
    pos += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos < bytes.len() && bytes[pos] == b']' && out.is_empty() {
            pos += 1;
            break;
        }
        let (text, next) = parse_json_string(body, pos)?;
        out.push(text);
        pos = next;
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => {
                pos += 1;
                break;
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content after the array (byte {pos})"));
    }
    Ok(out)
}

/// Parses one JSON string literal starting at `pos`; returns the decoded
/// text and the byte offset past the closing quote.
fn parse_json_string(body: &str, mut pos: usize) -> Result<(String, usize), String> {
    let bytes = body.as_bytes();
    if bytes.get(pos) != Some(&b'"') {
        return Err(format!("expected a JSON string at byte {pos}"));
    }
    pos += 1;
    let mut out = String::new();
    let mut chars = body[pos..].char_indices();
    let mut pending_high: Option<u16> = None;
    while let Some((offset, c)) = chars.next() {
        let flush_surrogate = |pending: &mut Option<u16>, out: &mut String| {
            if pending.take().is_some() {
                out.push(char::REPLACEMENT_CHARACTER);
            }
        };
        match c {
            '"' => {
                flush_surrogate(&mut pending_high, &mut out);
                return Ok((out, pos + offset + 1));
            }
            '\\' => {
                let Some((esc_offset, esc)) = chars.next() else {
                    return Err("unterminated escape".into());
                };
                let simple = match esc {
                    '"' => Some('"'),
                    '\\' => Some('\\'),
                    '/' => Some('/'),
                    'b' => Some('\u{8}'),
                    'f' => Some('\u{c}'),
                    'n' => Some('\n'),
                    'r' => Some('\r'),
                    't' => Some('\t'),
                    'u' => None,
                    other => {
                        return Err(format!(
                            "unknown escape `\\{other}` at byte {}",
                            pos + esc_offset
                        ))
                    }
                };
                if let Some(ch) = simple {
                    flush_surrogate(&mut pending_high, &mut out);
                    out.push(ch);
                    continue;
                }
                let mut code = 0u16;
                for _ in 0..4 {
                    let Some((_, h)) = chars.next() else {
                        return Err("truncated \\u escape".into());
                    };
                    let digit = h
                        .to_digit(16)
                        .ok_or_else(|| format!("bad \\u digit `{h}`"))?;
                    code = (code << 4) | digit as u16;
                }
                match (pending_high, code) {
                    (Some(high), 0xDC00..=0xDFFF) => {
                        let combined = 0x10000
                            + ((u32::from(high) - 0xD800) << 10)
                            + (u32::from(code) - 0xDC00);
                        out.push(char::from_u32(combined).unwrap_or(char::REPLACEMENT_CHARACTER));
                        pending_high = None;
                    }
                    (_, 0xD800..=0xDBFF) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        pending_high = Some(code);
                    }
                    (_, _) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        out.push(
                            char::from_u32(u32::from(code)).unwrap_or(char::REPLACEMENT_CHARACTER),
                        );
                    }
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(format!(
                    "unescaped control character at byte {}",
                    pos + offset
                ));
            }
            c => {
                flush_surrogate(&mut pending_high, &mut out);
                out.push(c);
            }
        }
    }
    Err("unterminated JSON string".into())
}

/// Renders a [`DocumentAssignment`] as the canonical JSON object the
/// server answers with (`cluster`, `trash`, `score`, `tuples: [...]`).
/// Shared with the CLI's `--jsonl` output so both surfaces speak one
/// format.
pub fn assignment_json(report: &DocumentAssignment, trash_id: u32) -> String {
    let tuples: Vec<String> = report
        .tuples
        .iter()
        .map(|t| {
            format!(
                r#"{{"cluster":{},"trash":{},"similarity":{},"candidates":{}}}"#,
                t.cluster,
                t.cluster == trash_id,
                t.similarity,
                t.candidates
            )
        })
        .collect();
    format!(
        r#"{{"cluster":{},"trash":{},"score":{},"tuples":[{}]}}"#,
        report.cluster,
        report.cluster == trash_id,
        report.score,
        tuples.join(",")
    )
}

fn handle_connection(
    mut stream: TcpStream,
    classifier: &mut Classifier,
    stats: &ServerStats,
    brute: bool,
) {
    stats.requests.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut stream) {
        Ok(r) => r,
        Err(message) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
            respond(&mut stream, "400 Bad Request", &body);
            return;
        }
    };

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/classify") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(body) => body,
                Err(_) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &mut stream,
                        "400 Bad Request",
                        r#"{"error":"body is not UTF-8"}"#,
                    );
                    return;
                }
            };
            // A leading `[` cannot start well-formed XML, so it reliably
            // selects the batch form: a JSON array of XML document strings.
            if body.trim_start().starts_with('[') {
                let docs = match parse_json_string_array(body) {
                    Ok(docs) => docs,
                    Err(message) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
                        respond(&mut stream, "400 Bad Request", &body);
                        return;
                    }
                };
                let entries: Vec<String> = docs
                    .iter()
                    .map(|xml| {
                        let result = if brute {
                            classifier.classify_brute(xml)
                        } else {
                            classifier.classify(xml)
                        };
                        match result {
                            Ok(report) => {
                                stats.classified.fetch_add(1, Ordering::Relaxed);
                                if report.cluster == classifier.trash_id() {
                                    stats.trash.fetch_add(1, Ordering::Relaxed);
                                }
                                assignment_json(&report, classifier.trash_id())
                            }
                            Err(e) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                                format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()))
                            }
                        }
                    })
                    .collect();
                respond(&mut stream, "200 OK", &format!("[{}]", entries.join(",")));
                return;
            }
            let result = if brute {
                classifier.classify_brute(body)
            } else {
                classifier.classify(body)
            };
            match result {
                Ok(report) => {
                    stats.classified.fetch_add(1, Ordering::Relaxed);
                    if report.cluster == classifier.trash_id() {
                        stats.trash.fetch_add(1, Ordering::Relaxed);
                    }
                    let body = assignment_json(&report, classifier.trash_id());
                    respond(&mut stream, "200 OK", &body);
                }
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let body = format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()));
                    respond(&mut stream, "400 Bad Request", &body);
                }
            }
        }
        ("GET", "/model") => {
            let model = classifier.model();
            let rep_items: Vec<String> = model.reps.iter().map(|r| r.len().to_string()).collect();
            let body = format!(
                r#"{{"format_version":{},"k":{},"f":{},"gamma":{},"labels":{},"vocabulary":{},"paths":{},"rep_items":[{}],"trained_documents":{},"trained_transactions":{}}}"#,
                MODEL_FORMAT_VERSION,
                model.k(),
                model.params.f,
                model.params.gamma,
                model.labels.len(),
                model.vocabulary.len(),
                model.paths.len(),
                rep_items.join(","),
                model.trained_documents,
                model.trained_transactions,
            );
            respond(&mut stream, "200 OK", &body);
        }
        ("GET", "/stats") => {
            let body = format!(
                r#"{{"requests":{},"classified":{},"trash":{},"errors":{},"index_postings":{},"brute_force":{}}}"#,
                stats.requests.load(Ordering::Relaxed),
                stats.classified.load(Ordering::Relaxed),
                stats.trash.load(Ordering::Relaxed),
                stats.errors.load(Ordering::Relaxed),
                classifier.index().posting_entries(),
                brute,
            );
            respond(&mut stream, "200 OK", &body);
        }
        _ => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            respond(
                &mut stream,
                "404 Not Found",
                r#"{"error":"no such endpoint (POST /classify, GET /model, GET /stats)"}"#,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::TupleAssignment;

    #[test]
    fn json_escaping_handles_hostile_strings() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("line\nbreak\ttab\\"), r"line\nbreak\ttab\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_string_array_parses_the_batch_body() {
        assert_eq!(
            parse_json_string_array(r#"["<a/>", "<b/>"]"#).unwrap(),
            vec!["<a/>".to_string(), "<b/>".to_string()]
        );
        assert_eq!(parse_json_string_array("[]").unwrap(), Vec::<String>::new());
        assert_eq!(
            parse_json_string_array(r#"  [ "x" ]  "#).unwrap(),
            vec!["x".to_string()]
        );
        // Escapes, including \uXXXX and a surrogate pair.
        assert_eq!(
            parse_json_string_array(r#"["a\"b\\c\n\té😀"]"#).unwrap(),
            vec!["a\"b\\c\n\t\u{e9}\u{1F600}".to_string()]
        );
        assert_eq!(
            parse_json_string_array(r#"["\u00e9 \ud83d\ude00"]"#).unwrap(),
            vec!["\u{e9} \u{1F600}".to_string()]
        );
    }

    #[test]
    fn json_string_array_rejects_malformed_bodies() {
        for bad in [
            "",
            "[",
            "[1, 2]",
            r#"["a""#,
            r#"["a",]"#,
            r#"["a"] trailing"#,
            r#"["bad \q escape"]"#,
            "\"not an array\"",
        ] {
            assert!(
                parse_json_string_array(bad).is_err(),
                "must reject: {bad:?}"
            );
        }
        // A lone surrogate decodes to the replacement character rather
        // than corrupting the string.
        let lone = parse_json_string_array(r#"["\ud83dx"]"#).unwrap();
        assert_eq!(lone, vec!["\u{FFFD}x".to_string()]);
    }

    #[test]
    fn assignment_json_shape() {
        let report = DocumentAssignment {
            cluster: 1,
            score: 0.5,
            tuples: vec![TupleAssignment {
                cluster: 1,
                similarity: 0.5,
                candidates: 2,
            }],
        };
        let json = assignment_json(&report, 4);
        assert_eq!(
            json,
            r#"{"cluster":1,"trash":false,"score":0.5,"tuples":[{"cluster":1,"trash":false,"similarity":0.5,"candidates":2}]}"#
        );
        let trash = DocumentAssignment {
            cluster: 4,
            score: 0.0,
            tuples: Vec::new(),
        };
        assert!(assignment_json(&trash, 4).contains(r#""trash":true"#));
    }
}
