//! A minimal multi-threaded HTTP/1.1 classification server with hot model
//! reload.
//!
//! No external dependencies: `std::net::TcpListener` accepts connections
//! and hands them to a fixed pool of worker threads over a
//! `crossbeam-channel`; each worker owns its **own** [`ClassifyEngine`]
//! so request handling is lock-free (the engine needs `&mut self` because
//! its session interners grow with unseen markup — per the `classify`
//! module docs that growth never changes scores). The engine's layout is
//! picked by [`ServeOptions::shards`]: replicated (each worker carries a
//! full private index — the default) or sharded (the pool shares **one**
//! immutable scatter/gather engine per model epoch; see the `shard`
//! module).
//!
//! The model is *not* fixed for the server's lifetime: all workers share a
//! [`ModelSlot`] (see the `slot` module) and lazily rebuild their
//! classifier when they observe a newer epoch, so a freshly trained
//! `.cxkmodel` swaps in without dropping a single request. Three surfaces
//! drive the swap: `POST /reload`, an opt-in mtime poller
//! ([`ServeOptions::watch`]), and the [`Server::reload`] library API that
//! `cxk_stream`'s periodic retrain feeds directly.
//!
//! Endpoints (responses are JSON, `Connection: close`, and every response
//! carries the answering worker's model epoch in an `X-Model-Epoch`
//! header):
//!
//! * `POST /classify` — body: one XML document, **or** a JSON array of XML
//!   document strings (batch classification, amortizing connection and
//!   parse overhead for bulk scoring). A single document answers `200`
//!   with its cluster, score and per-tuple assignments (`400` on malformed
//!   XML); a batch answers `200` with a JSON array holding one assignment
//!   object — or a per-document `{"error": …}` object — per input, in
//!   order. A whole request is answered against one epoch, never a mix.
//! * `POST /reload` — body: the path to a `.cxkmodel` snapshot, or empty
//!   to re-read the path the server was started from. The snapshot's
//!   magic, format version and checksum are validated *before* the swap;
//!   an incompatible or corrupt snapshot answers `409 Conflict` and the
//!   live model is untouched. Success answers `200` with the new epoch.
//! * `GET /model` — model metadata (epoch, k, parameters, sizes).
//! * `GET /stats` — server counters (connections, requests,
//!   classifications, errors, reloads, trash rate) and index diagnostics;
//!   in sharded mode also the engine layout and per-shard statistics
//!   (owned representatives, postings, tuples scattered, candidates
//!   scored).
//!
//! The protocol subset is deliberately tiny: request line + headers,
//! `Content-Length` bodies only (no chunked encoding, no keep-alive;
//! duplicate or non-digit `Content-Length` headers are rejected outright
//! as request-smuggling hygiene). The point is a dependency-free serving
//! path whose throughput the `serve_throughput` bench bin can measure; a
//! production transport is a ROADMAP item.
//!
//! **Trust boundary:** the server has no authentication, and
//! `POST /reload` in particular reads a server-side filesystem path named
//! by the client (the error text reveals whether that path was readable).
//! Expose it only to trusted clients — the CLI binds `127.0.0.1`
//! exclusively; a [`Server::start`] on a wider address must sit behind a
//! trusted network or proxy.

use crate::classify::{ClassifyEngine, DocumentAssignment};
use crate::slot::{EpochModel, ModelSlot};
use cxk_core::{
    load_model, peek_format_version, snapshot_digest, TrainedModel, MODEL_FORMAT_VERSION,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on accepted request bodies (64 MiB), so a hostile
/// `Content-Length` cannot exhaust memory.
const MAX_BODY_BYTES: u64 = 64 << 20;

/// Upper bound on the request line plus all headers (16 KiB). Without it a
/// client sending an endless header stream would grow worker memory
/// without bound — `MAX_BODY_BYTES` only constrains the declared body.
const MAX_HEAD_BYTES: usize = 16 << 10;

/// How often the file watcher wakes to check the shutdown flag; the
/// configured watch interval is quantized to multiples of this.
const WATCH_TICK: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (each with its own classifier). Clamped to ≥ 1.
    pub threads: usize,
    /// Score every representative instead of consulting the index
    /// (diagnostics / benchmarking the index's benefit).
    pub brute_force: bool,
    /// Per-connection read/write timeout. An idle or trickling client
    /// would otherwise pin its worker forever (and block shutdown).
    pub io_timeout: Duration,
    /// Partition the representatives across this many shards and share
    /// **one** immutable scatter/gather engine per model epoch across the
    /// whole worker pool (`cxk serve --shards <n>`). `None` (the default)
    /// replicates a full index into every worker instead. Sharded
    /// assignment is bit-identical to replicated and brute-force
    /// assignment — see the `shard` module docs.
    pub shards: Option<usize>,
    /// The snapshot path behind the model, if it came from disk: the
    /// default `POST /reload` target and the file the watcher polls.
    pub model_path: Option<PathBuf>,
    /// Poll `model_path` at this interval and hot-swap the snapshot when
    /// its mtime (and content digest) change. Requires `model_path`.
    pub watch: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            brute_force: false,
            io_timeout: Duration::from_secs(10),
            shards: None,
            model_path: None,
            watch: None,
        }
    }
}

/// Monotonic server counters, shared by all workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and handed to a worker (including ones that
    /// never produced a parseable request).
    pub connections: AtomicU64,
    /// HTTP requests successfully parsed (head + body). Malformed or
    /// timed-out connections count in `connections` and `errors` only.
    pub requests: AtomicU64,
    /// Successful classifications.
    pub classified: AtomicU64,
    /// Classifications that landed in the trash cluster.
    pub trash: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Successful model swaps (any surface: endpoint, watcher, library).
    pub reloads: AtomicU64,
    /// Rejected swap attempts (unreadable, corrupt or incompatible
    /// snapshots); the live model was untouched.
    pub reload_errors: AtomicU64,
}

/// A point-in-time copy of the counters plus the live model epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted and handed to a worker.
    pub connections: u64,
    /// HTTP requests successfully parsed.
    pub requests: u64,
    /// Successful classifications.
    pub classified: u64,
    /// Classifications that landed in the trash cluster.
    pub trash: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Successful model swaps.
    pub reloads: u64,
    /// Rejected swap attempts.
    pub reload_errors: u64,
    /// The live model epoch (1 = the boot model).
    pub epoch: u64,
}

/// A running classification server.
pub struct Server {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

/// Everything a worker needs besides its own classifier.
struct WorkerCtx {
    slot: Arc<ModelSlot>,
    stats: Arc<ServerStats>,
    brute: bool,
    model_path: Option<PathBuf>,
}

impl Server {
    /// Binds `addr` (e.g. `("127.0.0.1", 0)` for an ephemeral port) and
    /// starts the acceptor plus `opts.threads` workers; `model` becomes
    /// epoch 1. With `opts.watch` (and a `model_path`) a poller thread
    /// hot-swaps the snapshot whenever the file changes on disk.
    ///
    /// # Errors
    /// Returns the bind error.
    pub fn start(
        model: TrainedModel,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let slot = Arc::new(ModelSlot::with_shards(model, opts.shards));
        let threads = opts.threads.max(1);

        let (tx, rx) = crossbeam_channel::unbounded::<TcpStream>();
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = rx.clone();
            let ctx = WorkerCtx {
                slot: Arc::clone(&slot),
                stats: Arc::clone(&stats),
                brute: opts.brute_force,
                model_path: opts.model_path.clone(),
            };
            let io_timeout = opts.io_timeout;
            workers.push(std::thread::spawn(move || {
                let mut current = ctx.slot.current();
                let mut engine = engine_for(&current);
                while let Ok(stream) = rx.recv() {
                    // Hot reload: observe a newer epoch *between* requests,
                    // so in-flight work always finishes on the model it
                    // started with and no lock is held while classifying.
                    // In sharded mode the rebuild is a cheap session — the
                    // postings were built once, at swap time.
                    if ctx.slot.epoch() != current.epoch {
                        current = ctx.slot.current();
                        engine = engine_for(&current);
                    }
                    // A slow or idle client must not pin this worker: cap
                    // every read and write. Zero would mean "no timeout"
                    // to the socket API, so clamp it away.
                    let timeout = Some(io_timeout.max(Duration::from_millis(1)));
                    let _ = stream.set_read_timeout(timeout);
                    let _ = stream.set_write_timeout(timeout);
                    handle_connection(stream, &mut engine, current.epoch, &ctx);
                }
            }));
        }
        drop(rx);

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Workers all exited only after tx is dropped; a
                        // send can't fail while this loop runs.
                        let _ = tx.send(stream);
                    }
                }
                // tx drops here; workers drain the queue and exit.
            })
        };

        let watcher = match (opts.watch, &opts.model_path) {
            (Some(interval), Some(path)) => Some(spawn_watcher(
                Arc::clone(&slot),
                Arc::clone(&stats),
                Arc::clone(&shutdown),
                path.clone(),
                interval,
            )),
            _ => None,
        };

        Ok(Server {
            addr,
            slot,
            shutdown,
            stats,
            acceptor: Some(acceptor),
            workers,
            watcher,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live model epoch (1 = the model the server started with).
    pub fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    /// Atomically swaps `model` into the running worker pool and returns
    /// the new epoch — the library surface of hot reload, built for
    /// `cxk_stream`-style periodic retrains
    /// (`Engine::fit → FitOutcome::into_model → Server::reload`). In-flight
    /// requests finish on the previous model; each worker picks the new
    /// one up before its next request.
    pub fn reload(&self, model: TrainedModel) -> u64 {
        let epoch = self.slot.swap(model);
        self.stats.reloads.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// A snapshot of the counters and the live epoch.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            classified: self.stats.classified.load(Ordering::Relaxed),
            trash: self.stats.trash.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
            reload_errors: self.stats.reload_errors.load(Ordering::Relaxed),
            epoch: self.slot.epoch(),
        }
    }

    /// Blocks until the server shuts down (for a foreground `cxk serve`).
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a dummy connection.
        let _ = TcpStream::connect(loopback_of(self.addr));
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut down) server stops accepting.
        // (The watcher polls the same flag and exits within a tick.)
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(loopback_of(self.addr));
    }
}

/// One worker's classify engine for a published epoch: a lightweight
/// session over the epoch's shared shard set, or a private full-index
/// classifier when the slot runs replicated.
fn engine_for(epoch: &EpochModel) -> ClassifyEngine {
    ClassifyEngine::for_epoch(&epoch.model, epoch.sharded.as_ref())
}

/// The address the shutdown path connects to in order to unblock the
/// acceptor. A server bound to an unspecified address (`0.0.0.0:p` /
/// `[::]:p`) cannot be *connected* to at that address on every platform —
/// the dummy connection would fail and the acceptor would block forever —
/// so route the wake-up through the matching loopback with the bound port.
fn loopback_of(addr: SocketAddr) -> SocketAddr {
    let ip = match addr.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, addr.port())
}

/// Validates `bytes` as a snapshot and decodes it. The magic, format
/// version and checksum are all verified (plus the internal id
/// consistency `load_model` enforces) *before* any swap, so a bad
/// snapshot can never disturb the live model. `path` only labels errors.
fn load_snapshot_bytes(bytes: &[u8], path: &Path) -> Result<TrainedModel, String> {
    match peek_format_version(bytes) {
        Some(MODEL_FORMAT_VERSION) => {}
        Some(version) => {
            return Err(format!(
                "{}: incompatible snapshot format version {version} (this server speaks {MODEL_FORMAT_VERSION})",
                path.display()
            ))
        }
        None => return Err(format!("{}: not a .cxkmodel snapshot", path.display())),
    }
    load_model(bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads, validates and decodes the snapshot at `path`.
fn load_snapshot(path: &Path) -> Result<TrainedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    load_snapshot_bytes(&bytes, path)
}

/// The opt-in mtime poller: every `interval`, stat `path`; when the mtime
/// moves *and* the trailing content digest actually differs, validate and
/// swap the snapshot in. Rejected snapshots are counted and logged to
/// stderr; the live model is untouched, and — because `last_mtime` is
/// only committed on a skip or a successful swap — the file is re-tried
/// every interval until a valid snapshot appears. That is what makes a
/// *torn read* of a non-atomic overwrite safe even on filesystems with
/// coarse mtime granularity: the half-written bytes fail the checksum,
/// nothing is committed, and the completed write is picked up on a later
/// poll whether or not it lands in the same timestamp unit.
fn spawn_watcher(
    slot: Arc<ModelSlot>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    path: PathBuf,
    interval: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let modified = |path: &Path| std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let mut last_mtime = modified(&path);
        // The boot model came from this path moments ago; its digest is
        // read once so an immediate identical rewrite is not re-loaded.
        let mut last_digest = std::fs::read(&path)
            .ok()
            .as_deref()
            .and_then(snapshot_digest);
        let mut waited = Duration::ZERO;
        while !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(WATCH_TICK);
            waited += WATCH_TICK;
            if waited < interval {
                continue;
            }
            waited = Duration::ZERO;
            let mtime = modified(&path);
            if mtime == last_mtime {
                continue;
            }
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    // Transient (mid-rename, NFS hiccup): retry next poll.
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("cxk: watch: cannot read {}: {e}", path.display());
                    continue;
                }
            };
            // A touch that did not change the contents (same trailing
            // digest) is not a new model; skip the swap and the rebuilds
            // it would trigger in every worker.
            let digest = snapshot_digest(&bytes);
            if digest.is_some() && digest == last_digest {
                last_mtime = mtime;
                continue;
            }
            // Validate the very bytes that were read — one read per poll,
            // and the digest recorded below always describes the model
            // that actually went live.
            match load_snapshot_bytes(&bytes, &path) {
                Ok(model) => {
                    let epoch = slot.swap(model);
                    stats.reloads.fetch_add(1, Ordering::Relaxed);
                    last_mtime = mtime;
                    last_digest = digest;
                    eprintln!("cxk: watch: reloaded {} as epoch {epoch}", path.display());
                }
                Err(message) => {
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("cxk: watch: keeping the live model: {message}");
                }
            }
        }
    })
}

/// Parsed request head.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    body: Vec<u8>,
}

/// Reads one `\n`-terminated line, failing once the head budget is spent —
/// `BufReader::read_line` alone would buffer a newline-free byte stream
/// without bound.
fn read_line_capped(
    reader: &mut impl BufRead,
    budget: &mut usize,
    what: &str,
) -> Result<String, String> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => break,
            Ok(_) => {
                if *budget == 0 {
                    return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
                }
                *budget -= 1;
                if byte[0] == b'\n' {
                    break;
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(format!("read {what}: {e}")),
        }
    }
    String::from_utf8(line).map_err(|_| format!("{what} is not UTF-8"))
}

/// Parses a `Content-Length` value strictly: ASCII digits only. This
/// rejects what `u64::from_str` would quietly accept (`+5`, for example)
/// — request-smuggling hygiene for a header that decides body framing.
fn parse_content_length(value: &str) -> Result<u64, String> {
    let value = value.trim();
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err("bad Content-Length".into());
    }
    value.parse().map_err(|_| "bad Content-Length".to_string())
}

/// Reads one HTTP/1.1 request (head + `Content-Length` body).
fn read_request(reader: &mut impl BufRead) -> Result<Request, String> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_line_capped(reader, &mut budget, "request line")?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || path.is_empty() {
        return Err("malformed request line".into());
    }

    let mut content_length: Option<u64> = None;
    loop {
        let header = read_line_capped(reader, &mut budget, "header")?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                // Two framing declarations in one request is classic
                // request smuggling; refuse rather than pick one.
                if content_length.is_some() {
                    return Err("duplicate Content-Length header".into());
                }
                content_length = Some(parse_content_length(value)?);
            }
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(format!("body exceeds {MAX_BODY_BYTES} bytes"));
    }

    let mut body = vec![0u8; content_length as usize];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request { method, path, body })
}

fn respond(stream: &mut TcpStream, status: &str, epoch: u64, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nX-Model-Epoch: {epoch}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the CLI's `--jsonl`
/// output so every JSON the workspace emits escapes identically.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON array of strings — the batch `POST /classify` body — with
/// a dependency-free cursor. Accepts exactly `[ "s1", "s2", … ]` with the
/// standard string escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`, including
/// surrogate pairs); anything else is an error naming the byte offset.
fn parse_json_string_array(body: &str) -> Result<Vec<String>, String> {
    let bytes = body.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if pos >= bytes.len() || bytes[pos] != b'[' {
        return Err(format!("batch body must be a JSON array (byte {pos})"));
    }
    pos += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos < bytes.len() && bytes[pos] == b']' && out.is_empty() {
            pos += 1;
            break;
        }
        let (text, next) = parse_json_string(body, pos)?;
        out.push(text);
        pos = next;
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => {
                pos += 1;
                break;
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content after the array (byte {pos})"));
    }
    Ok(out)
}

/// Parses one JSON string literal starting at `pos`; returns the decoded
/// text and the byte offset past the closing quote.
fn parse_json_string(body: &str, mut pos: usize) -> Result<(String, usize), String> {
    let bytes = body.as_bytes();
    if bytes.get(pos) != Some(&b'"') {
        return Err(format!("expected a JSON string at byte {pos}"));
    }
    pos += 1;
    let mut out = String::new();
    let mut chars = body[pos..].char_indices();
    let mut pending_high: Option<u16> = None;
    while let Some((offset, c)) = chars.next() {
        let flush_surrogate = |pending: &mut Option<u16>, out: &mut String| {
            if pending.take().is_some() {
                out.push(char::REPLACEMENT_CHARACTER);
            }
        };
        match c {
            '"' => {
                flush_surrogate(&mut pending_high, &mut out);
                return Ok((out, pos + offset + 1));
            }
            '\\' => {
                let Some((esc_offset, esc)) = chars.next() else {
                    return Err("unterminated escape".into());
                };
                let simple = match esc {
                    '"' => Some('"'),
                    '\\' => Some('\\'),
                    '/' => Some('/'),
                    'b' => Some('\u{8}'),
                    'f' => Some('\u{c}'),
                    'n' => Some('\n'),
                    'r' => Some('\r'),
                    't' => Some('\t'),
                    'u' => None,
                    other => {
                        return Err(format!(
                            "unknown escape `\\{other}` at byte {}",
                            pos + esc_offset
                        ))
                    }
                };
                if let Some(ch) = simple {
                    flush_surrogate(&mut pending_high, &mut out);
                    out.push(ch);
                    continue;
                }
                let mut code = 0u16;
                for _ in 0..4 {
                    let Some((_, h)) = chars.next() else {
                        return Err("truncated \\u escape".into());
                    };
                    let digit = h
                        .to_digit(16)
                        .ok_or_else(|| format!("bad \\u digit `{h}`"))?;
                    code = (code << 4) | digit as u16;
                }
                match (pending_high, code) {
                    (Some(high), 0xDC00..=0xDFFF) => {
                        let combined = 0x10000
                            + ((u32::from(high) - 0xD800) << 10)
                            + (u32::from(code) - 0xDC00);
                        out.push(char::from_u32(combined).unwrap_or(char::REPLACEMENT_CHARACTER));
                        pending_high = None;
                    }
                    (_, 0xD800..=0xDBFF) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        pending_high = Some(code);
                    }
                    (_, _) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        out.push(
                            char::from_u32(u32::from(code)).unwrap_or(char::REPLACEMENT_CHARACTER),
                        );
                    }
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(format!(
                    "unescaped control character at byte {}",
                    pos + offset
                ));
            }
            c => {
                flush_surrogate(&mut pending_high, &mut out);
                out.push(c);
            }
        }
    }
    Err("unterminated JSON string".into())
}

/// Renders a [`DocumentAssignment`] as the canonical JSON object the
/// server answers with (`cluster`, `trash`, `score`, `tuples: [...]`).
/// Shared with the CLI's `--jsonl` output so both surfaces speak one
/// format.
pub fn assignment_json(report: &DocumentAssignment, trash_id: u32) -> String {
    let tuples: Vec<String> = report
        .tuples
        .iter()
        .map(|t| {
            format!(
                r#"{{"cluster":{},"trash":{},"similarity":{},"candidates":{}}}"#,
                t.cluster,
                t.cluster == trash_id,
                t.similarity,
                t.candidates
            )
        })
        .collect();
    format!(
        r#"{{"cluster":{},"trash":{},"score":{},"tuples":[{}]}}"#,
        report.cluster,
        report.cluster == trash_id,
        report.score,
        tuples.join(",")
    )
}

fn handle_connection(
    mut stream: TcpStream,
    engine: &mut ClassifyEngine,
    epoch: u64,
    ctx: &WorkerCtx,
) {
    let stats = &*ctx.stats;
    stats.connections.fetch_add(1, Ordering::Relaxed);
    let request = match read_request(&mut BufReader::new(&mut stream)) {
        Ok(r) => r,
        Err(message) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
            respond(&mut stream, "400 Bad Request", epoch, &body);
            return;
        }
    };
    stats.requests.fetch_add(1, Ordering::Relaxed);

    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/classify") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(body) => body,
                Err(_) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &mut stream,
                        "400 Bad Request",
                        epoch,
                        r#"{"error":"body is not UTF-8"}"#,
                    );
                    return;
                }
            };
            // A leading `[` cannot start well-formed XML, so it reliably
            // selects the batch form: a JSON array of XML document strings.
            if body.trim_start().starts_with('[') {
                let docs = match parse_json_string_array(body) {
                    Ok(docs) => docs,
                    Err(message) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
                        respond(&mut stream, "400 Bad Request", epoch, &body);
                        return;
                    }
                };
                let entries: Vec<String> = docs
                    .iter()
                    .map(|xml| {
                        let result = if ctx.brute {
                            engine.classify_brute(xml)
                        } else {
                            engine.classify(xml)
                        };
                        match result {
                            Ok(report) => {
                                stats.classified.fetch_add(1, Ordering::Relaxed);
                                if report.cluster == engine.trash_id() {
                                    stats.trash.fetch_add(1, Ordering::Relaxed);
                                }
                                assignment_json(&report, engine.trash_id())
                            }
                            Err(e) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                                format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()))
                            }
                        }
                    })
                    .collect();
                respond(
                    &mut stream,
                    "200 OK",
                    epoch,
                    &format!("[{}]", entries.join(",")),
                );
                return;
            }
            let result = if ctx.brute {
                engine.classify_brute(body)
            } else {
                engine.classify(body)
            };
            match result {
                Ok(report) => {
                    stats.classified.fetch_add(1, Ordering::Relaxed);
                    if report.cluster == engine.trash_id() {
                        stats.trash.fetch_add(1, Ordering::Relaxed);
                    }
                    let body = assignment_json(&report, engine.trash_id());
                    respond(&mut stream, "200 OK", epoch, &body);
                }
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let body = format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()));
                    respond(&mut stream, "400 Bad Request", epoch, &body);
                }
            }
        }
        ("POST", "/reload") => {
            let target = match std::str::from_utf8(&request.body) {
                Ok(body) => body.trim(),
                Err(_) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    respond(
                        &mut stream,
                        "400 Bad Request",
                        epoch,
                        r#"{"error":"body is not UTF-8 (expected a snapshot path, or empty)"}"#,
                    );
                    return;
                }
            };
            let path = if target.is_empty() {
                ctx.model_path.clone()
            } else {
                Some(PathBuf::from(target))
            };
            let Some(path) = path else {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                respond(
                    &mut stream,
                    "400 Bad Request",
                    epoch,
                    r#"{"error":"no snapshot path: the server was started from an in-memory model; POST the path to a .cxkmodel in the body"}"#,
                );
                return;
            };
            match load_snapshot(&path) {
                Ok(model) => {
                    let new_epoch = ctx.slot.swap(model);
                    stats.reloads.fetch_add(1, Ordering::Relaxed);
                    let body = format!(
                        r#"{{"reloaded":true,"epoch":{new_epoch},"path":"{}"}}"#,
                        json_escape(&path.display().to_string())
                    );
                    respond(&mut stream, "200 OK", new_epoch, &body);
                }
                Err(message) => {
                    // The snapshot failed validation (or could not be
                    // read): conflict with the live model, which stays.
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
                    respond(&mut stream, "409 Conflict", epoch, &body);
                }
            }
        }
        ("GET", "/model") => {
            let model = engine.model();
            let rep_items: Vec<String> = model.reps.iter().map(|r| r.len().to_string()).collect();
            let body = format!(
                r#"{{"epoch":{},"format_version":{},"k":{},"f":{},"gamma":{},"labels":{},"vocabulary":{},"paths":{},"rep_items":[{}],"trained_documents":{},"trained_transactions":{}}}"#,
                epoch,
                MODEL_FORMAT_VERSION,
                model.k(),
                model.params.f,
                model.params.gamma,
                model.labels.len(),
                model.vocabulary.len(),
                model.paths.len(),
                rep_items.join(","),
                model.trained_documents,
                model.trained_transactions,
            );
            respond(&mut stream, "200 OK", epoch, &body);
        }
        ("GET", "/stats") => {
            // Per-shard detail (sharded mode): one object per shard, in
            // range order, counting since this epoch's engine was built.
            // Arrays stay at the tail of the object so flat `"field":value`
            // scrapers keep working on everything before them.
            let engine_detail = match engine.sharded_engine() {
                Some(sharded) => {
                    let shards: Vec<String> = sharded
                        .shard_stats()
                        .iter()
                        .map(|s| {
                            format!(
                                r#"{{"reps":{},"postings":{},"queries":{},"scored":{}}}"#,
                                s.reps, s.postings, s.queries, s.scored
                            )
                        })
                        .collect();
                    format!(
                        r#""engine":"sharded","shards":{},"postings_bytes":{},"shard_stats":[{}]"#,
                        sharded.shard_count(),
                        sharded.postings_bytes(),
                        shards.join(",")
                    )
                }
                None => r#""engine":"replicated""#.to_string(),
            };
            let body = format!(
                r#"{{"epoch":{},"connections":{},"requests":{},"classified":{},"trash":{},"errors":{},"reloads":{},"reload_errors":{},"index_postings":{},"brute_force":{},{engine_detail}}}"#,
                epoch,
                stats.connections.load(Ordering::Relaxed),
                stats.requests.load(Ordering::Relaxed),
                stats.classified.load(Ordering::Relaxed),
                stats.trash.load(Ordering::Relaxed),
                stats.errors.load(Ordering::Relaxed),
                stats.reloads.load(Ordering::Relaxed),
                stats.reload_errors.load(Ordering::Relaxed),
                engine.posting_entries(),
                ctx.brute,
            );
            respond(&mut stream, "200 OK", epoch, &body);
        }
        _ => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            respond(
                &mut stream,
                "404 Not Found",
                epoch,
                r#"{"error":"no such endpoint (POST /classify, POST /reload, GET /model, GET /stats)"}"#,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::TupleAssignment;
    use std::io::Cursor;

    #[test]
    fn json_escaping_handles_hostile_strings() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("line\nbreak\ttab\\"), r"line\nbreak\ttab\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_string_array_parses_the_batch_body() {
        assert_eq!(
            parse_json_string_array(r#"["<a/>", "<b/>"]"#).unwrap(),
            vec!["<a/>".to_string(), "<b/>".to_string()]
        );
        assert_eq!(parse_json_string_array("[]").unwrap(), Vec::<String>::new());
        assert_eq!(
            parse_json_string_array(r#"  [ "x" ]  "#).unwrap(),
            vec!["x".to_string()]
        );
        // Escapes, including \uXXXX and a surrogate pair.
        assert_eq!(
            parse_json_string_array(r#"["a\"b\\c\n\té😀"]"#).unwrap(),
            vec!["a\"b\\c\n\t\u{e9}\u{1F600}".to_string()]
        );
        assert_eq!(
            parse_json_string_array(r#"["\u00e9 \ud83d\ude00"]"#).unwrap(),
            vec!["\u{e9} \u{1F600}".to_string()]
        );
    }

    #[test]
    fn json_string_array_rejects_malformed_bodies() {
        for bad in [
            "",
            "[",
            "[1, 2]",
            r#"["a""#,
            r#"["a",]"#,
            r#"["a"] trailing"#,
            r#"["bad \q escape"]"#,
            "\"not an array\"",
        ] {
            assert!(
                parse_json_string_array(bad).is_err(),
                "must reject: {bad:?}"
            );
        }
        // A lone surrogate decodes to the replacement character rather
        // than corrupting the string.
        let lone = parse_json_string_array(r#"["\ud83dx"]"#).unwrap();
        assert_eq!(lone, vec!["\u{FFFD}x".to_string()]);
    }

    #[test]
    fn assignment_json_shape() {
        let report = DocumentAssignment {
            cluster: 1,
            score: 0.5,
            tuples: vec![TupleAssignment {
                cluster: 1,
                similarity: 0.5,
                candidates: 2,
            }],
        };
        let json = assignment_json(&report, 4);
        assert_eq!(
            json,
            r#"{"cluster":1,"trash":false,"score":0.5,"tuples":[{"cluster":1,"trash":false,"similarity":0.5,"candidates":2}]}"#
        );
        let trash = DocumentAssignment {
            cluster: 4,
            score: 0.0,
            tuples: Vec::new(),
        };
        assert!(assignment_json(&trash, 4).contains(r#""trash":true"#));
    }

    fn request_of(raw: &str) -> Result<Request, String> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn read_request_parses_a_plain_request() {
        let r = request_of("POST /classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/classify");
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Last-wins (or first-wins) on conflicting framing declarations is
        // the classic request-smuggling vector: refuse both orderings.
        for raw in [
            "POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello",
            "POST /classify HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello",
            // Even two *agreeing* declarations are refused outright.
            "POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
        ] {
            let e = request_of(raw).unwrap_err();
            assert!(e.contains("duplicate Content-Length"), "{raw:?}: {e}");
        }
    }

    #[test]
    fn non_digit_content_length_is_rejected() {
        // `u64::from_str` accepts a leading `+`; the header grammar does
        // not. Anything but ASCII digits must 400.
        for bad in ["+5", "-5", "5 5", "0x5", "5.0", "", " + 5"] {
            let raw = format!("POST /classify HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let e = request_of(&raw).unwrap_err();
            assert!(e.contains("bad Content-Length"), "{bad:?}: {e}");
        }
        // Plain digits (with surrounding whitespace trimmed) still parse.
        assert_eq!(parse_content_length(" 5 ").unwrap(), 5);
        assert_eq!(parse_content_length("0").unwrap(), 0);
    }

    #[test]
    fn loopback_substitutes_unspecified_bind_addresses() {
        let v4: SocketAddr = "0.0.0.0:7070".parse().unwrap();
        assert_eq!(loopback_of(v4), "127.0.0.1:7070".parse().unwrap());
        let v6: SocketAddr = "[::]:7070".parse().unwrap();
        assert_eq!(loopback_of(v6), "[::1]:7070".parse().unwrap());
        // Specific addresses pass through untouched.
        let bound: SocketAddr = "127.0.0.1:9999".parse().unwrap();
        assert_eq!(loopback_of(bound), bound);
        let eth: SocketAddr = "192.168.1.20:80".parse().unwrap();
        assert_eq!(loopback_of(eth), eth);
    }
}
