//! The inverted tag-path index: sound candidate pruning for classification.
//!
//! Classifying a transaction means computing `simγJ` against all `k`
//! representatives and taking the argmax. `simγJ(tr, rep) > 0` requires at
//! least one item pair with `sim(e, e') ≥ γ`, and under the paper's exact
//! (Dirichlet) tag matcher `sim(e, e') > 0` decomposes:
//!
//! * `sim_S > 0` iff the two *tag paths share at least one tag label*
//!   (Eq. 3's `Δ` is an exact-match indicator, so every positional term is
//!   zero unless some tag coincides), or both tag paths are empty;
//! * `sim_C > 0` iff the two TCU vectors *share a term with nonzero
//!   product*, or both are empty (the documented "no content vs. no
//!   content matches" convention).
//!
//! So a representative sharing **no tag label, no term, and no
//! empty-against-empty pairing** with the query transaction is provably at
//! `simγJ = 0` whenever `γ > 0` — skipping it cannot change the argmax
//! (zero-similarity representatives never win; the trash cluster takes
//! those transactions). [`TagPathIndex`] stores postings from tag labels
//! and terms to representative ids and returns the complement of that
//! provably-zero set. Pruning is *sound, never lossy*: the candidates are
//! evaluated with the full `simγJ`, so indexed assignment agrees
//! bit-for-bit with brute force (asserted by the integration tests).
//!
//! Degenerate settings fall back to evaluating everything: `γ = 0` (any
//! pair γ-matches) and empty query transactions (`simγJ(∅, ∅) = 1`).
//!
//! Note the postings are keyed by tag *labels*, not whole tag paths: an
//! exact-path index would wrongly prune representatives that γ-match
//! through partially overlapping paths (e.g. `dblp.article.title` vs
//! `dblp.inproceedings.title`). Keying on labels is the tightest relaxation
//! that stays sound under Eq. 3. The soundness argument assumes the exact
//! tag matcher — a semantically enriched `Δ` (cxk_semantic) would need
//! synonym-closed postings, which is future work (see ROADMAP).
//!
//! The index is immutable derived state over one model: under hot reload
//! each worker rebuilds its index together with its classifier when it
//! observes a newer model epoch (see the `slot` module), so postings and
//! representatives always describe the same snapshot.

use cxk_core::Representative;
use cxk_transact::item::ItemView;
use cxk_transact::SimParams;
use cxk_util::{FxHashMap, FxHashSet, Symbol};
use cxk_xml::path::PathTable;
use std::ops::Range;

/// The candidate set for one query transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Candidates {
    /// Pruning is unsound for this query/parameter combination — evaluate
    /// every representative.
    All,
    /// Only these representative ids (ascending) can have `simγJ > 0`.
    Some(Vec<u32>),
}

impl Candidates {
    /// The representative ids to evaluate, given `k` total. Allocation-free:
    /// `All` walks the id range directly instead of materializing a `Vec`,
    /// so the classify hot loop does not allocate per query.
    pub fn ids(&self, k: usize) -> CandidateIds<'_> {
        self.ids_in(0..k as u32)
    }

    /// The ids to evaluate when the index covers the representative range
    /// `range` (a shard's slice of the global id space): `All` yields the
    /// whole range; pruned candidates already carry global ids.
    pub fn ids_in(&self, range: Range<u32>) -> CandidateIds<'_> {
        match self {
            Candidates::All => CandidateIds::Range(range),
            Candidates::Some(ids) => CandidateIds::Listed(ids.iter()),
        }
    }

    /// Number of candidates, given `k` total.
    pub fn len(&self, k: usize) -> usize {
        match self {
            Candidates::All => k,
            Candidates::Some(ids) => ids.len(),
        }
    }
}

/// Iterator over candidate representative ids (see [`Candidates::ids`]).
#[derive(Debug, Clone)]
pub enum CandidateIds<'a> {
    /// Every id in the covered range (pruning was disabled).
    Range(Range<u32>),
    /// The pruned candidate list, ascending.
    Listed(std::slice::Iter<'a, u32>),
}

impl Iterator for CandidateIds<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            CandidateIds::Range(range) => range.next(),
            CandidateIds::Listed(iter) => iter.next().copied(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandidateIds::Range(range) => range.size_hint(),
            CandidateIds::Listed(iter) => iter.size_hint(),
        }
    }
}

impl ExactSizeIterator for CandidateIds<'_> {}

/// Inverted index over the items of a model's representatives.
///
/// The index may cover the *whole* representative set (the replicated
/// classifier) or a contiguous *range* of it (one shard of the sharded
/// engine, built with [`TagPathIndex::build_range`]): postings always
/// store **global** representative ids, so shard-local candidate lists
/// merge into the global argmax without translation.
#[derive(Debug, Clone, Default)]
pub struct TagPathIndex {
    /// First global representative id covered (0 for a full index).
    base: u32,
    /// Number of representatives indexed.
    k: usize,
    /// Structure channel: tag label → representative ids (ascending).
    tag_postings: FxHashMap<Symbol, Vec<u32>>,
    /// Content channel: term → representative ids (ascending).
    term_postings: FxHashMap<Symbol, Vec<u32>>,
    /// Representatives holding an item with an empty TCU vector (they
    /// content-match any empty query TCU).
    empty_vector_reps: Vec<u32>,
    /// Representatives holding an item with an empty tag path (they
    /// structure-match any empty query tag path). Real corpora never
    /// produce these; kept for soundness on arbitrary representatives.
    empty_tag_path_reps: Vec<u32>,
    /// The parameters classification uses; `f` selects which channels can
    /// contribute and `γ = 0` disables pruning entirely.
    params: SimParams,
}

impl TagPathIndex {
    /// Builds the index over `reps`; `paths` must resolve every item's tag
    /// path, and `params` must be the parameters classification will use.
    pub fn build(reps: &[Representative], paths: &PathTable, params: SimParams) -> Self {
        Self::build_range(reps, paths, params, 0)
    }

    /// Builds the index over one shard's slice of the representatives:
    /// `reps` holds the shard's representatives and `base` is the global id
    /// of `reps[0]`, so postings carry ids `base..base + reps.len()`.
    pub fn build_range(
        reps: &[Representative],
        paths: &PathTable,
        params: SimParams,
        base: u32,
    ) -> Self {
        let mut tag_postings: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
        let mut term_postings: FxHashMap<Symbol, Vec<u32>> = FxHashMap::default();
        let mut empty_vector_reps = Vec::new();
        let mut empty_tag_path_reps = Vec::new();

        for (j, rep) in reps.iter().enumerate() {
            let j = base + j as u32;
            let mut tags: FxHashSet<Symbol> = FxHashSet::default();
            let mut terms: FxHashSet<Symbol> = FxHashSet::default();
            let mut has_empty_vector = false;
            let mut has_empty_tag_path = false;
            for item in &rep.items {
                let labels = paths.resolve(item.tag_path);
                if labels.is_empty() {
                    has_empty_tag_path = true;
                }
                tags.extend(labels.iter().copied());
                if item.vector.is_empty() {
                    has_empty_vector = true;
                }
                terms.extend(item.vector.iter().map(|(t, _)| t));
            }
            for tag in tags {
                tag_postings.entry(tag).or_default().push(j);
            }
            for term in terms {
                term_postings.entry(term).or_default().push(j);
            }
            if has_empty_vector {
                empty_vector_reps.push(j);
            }
            if has_empty_tag_path {
                empty_tag_path_reps.push(j);
            }
        }
        // Postings are built in ascending j order already; assert in debug.
        debug_assert!(tag_postings
            .values()
            .all(|v| v.windows(2).all(|w| w[0] < w[1])));

        Self {
            base,
            k: reps.len(),
            tag_postings,
            term_postings,
            empty_vector_reps,
            empty_tag_path_reps,
            params,
        }
    }

    /// Number of representatives indexed.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the index covers no representatives.
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The global representative id range this index covers.
    pub fn covered(&self) -> Range<u32> {
        self.base..self.base + self.k as u32
    }

    /// Total posting entries (diagnostic, surfaced by `GET /stats`).
    pub fn posting_entries(&self) -> usize {
        self.tag_postings.values().map(Vec::len).sum::<usize>()
            + self.term_postings.values().map(Vec::len).sum::<usize>()
    }

    /// Estimated resident heap bytes of the postings (ids plus per-key
    /// `Vec` headers and the empty-item buckets). An estimate — hash-map
    /// bucket overhead is excluded — but a consistent one, so the
    /// replicated-vs-sharded memory comparison in `serve_throughput` and
    /// `GET /stats` measures what duplication actually costs.
    pub fn postings_bytes(&self) -> usize {
        let id = std::mem::size_of::<u32>();
        let key = std::mem::size_of::<Symbol>() + std::mem::size_of::<Vec<u32>>();
        let keys = self.tag_postings.len() + self.term_postings.len();
        (self.posting_entries() + self.empty_vector_reps.len() + self.empty_tag_path_reps.len())
            * id
            + keys * key
    }

    /// The candidate representatives for one query transaction. `paths`
    /// must resolve the query items' tag paths (the classifier's table,
    /// which extends the model's as unseen markup arrives).
    pub fn candidates(&self, query: &[ItemView<'_>], paths: &PathTable) -> Candidates {
        if query.is_empty() || self.params.gamma <= 0.0 {
            // simγJ(∅, ∅) = 1 and γ = 0 matches any pair: no sound pruning.
            return Candidates::All;
        }
        let structure = self.params.f > 0.0;
        let content = self.params.f < 1.0;

        let mut set: FxHashSet<u32> = FxHashSet::default();
        for item in query {
            if structure {
                let labels = paths.resolve(item.tag_path);
                if labels.is_empty() {
                    set.extend(self.empty_tag_path_reps.iter().copied());
                }
                for label in labels {
                    if let Some(post) = self.tag_postings.get(label) {
                        set.extend(post.iter().copied());
                    }
                }
            }
            if content {
                if item.vector.is_empty() {
                    set.extend(self.empty_vector_reps.iter().copied());
                }
                for (term, _) in item.vector.iter() {
                    if let Some(post) = self.term_postings.get(&term) {
                        set.extend(post.iter().copied());
                    }
                }
            }
        }
        let mut ids: Vec<u32> = set.into_iter().collect();
        ids.sort_unstable();
        Candidates::Some(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_core::rep::RepItem;
    use cxk_text::SparseVec;
    use cxk_util::Interner;
    use cxk_xml::path::PathId;

    struct Fixture {
        paths: PathTable,
        path_ids: Vec<PathId>,
        vectors: Vec<SparseVec>,
    }

    /// Paths: 0 = dblp.article.title, 1 = dblp.inproceedings.title,
    /// 2 = play.act.scene, 3 = empty. Vectors: 0 = {t0,t1}, 1 = {t2},
    /// 2 = empty.
    fn fixture() -> Fixture {
        let mut interner = Interner::new();
        let mut paths = PathTable::new();
        let specs: [&[&str]; 4] = [
            &["dblp", "article", "title"],
            &["dblp", "inproceedings", "title"],
            &["play", "act", "scene"],
            &[],
        ];
        let path_ids = specs
            .iter()
            .map(|spec| {
                let labels: Vec<Symbol> = spec.iter().map(|t| interner.intern(t)).collect();
                paths.intern(&labels)
            })
            .collect();
        let vectors = vec![
            SparseVec::from_pairs(vec![(Symbol(0), 1.0), (Symbol(1), 1.0)]),
            SparseVec::from_pairs(vec![(Symbol(2), 1.0)]),
            SparseVec::new(),
        ];
        Fixture {
            paths,
            path_ids,
            vectors,
        }
    }

    fn rep(fx: &Fixture, path: usize, vector: usize, fp: u64) -> Representative {
        Representative {
            items: vec![RepItem {
                path: fx.path_ids[path],
                tag_path: fx.path_ids[path],
                vector: fx.vectors[vector].clone(),
                fingerprint: fp,
                source: None,
            }],
        }
    }

    fn view<'a>(fx: &'a Fixture, path: usize, vector: usize, fp: u64) -> ItemView<'a> {
        ItemView {
            tag_path: fx.path_ids[path],
            vector: &fx.vectors[vector],
            fingerprint: fp,
        }
    }

    #[test]
    fn shared_tag_label_is_a_candidate() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 0, 1), rep(&fx, 2, 1, 2)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.5, 0.8));
        // Query path dblp.inproceedings.title shares `dblp`/`title` with rep
        // 0 but nothing with rep 1 (play.act.scene, disjoint vector).
        let query = [view(&fx, 1, 1, 9)];
        // Vector 1 = {t2} matches rep 1's vector {t2} through the content
        // channel, so rep 1 *is* a candidate; drop content by querying with
        // the structure-only parameterization.
        let structure_only = TagPathIndex::build(&reps, &fx.paths, SimParams::new(1.0, 0.8));
        assert_eq!(
            structure_only.candidates(&query, &fx.paths),
            Candidates::Some(vec![0])
        );
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![0, 1])
        );
    }

    #[test]
    fn disjoint_rep_is_pruned() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 0, 1), rep(&fx, 2, 1, 2)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.5, 0.8));
        // Query shares tags and terms with rep 0 only.
        let query = [view(&fx, 0, 0, 9)];
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![0])
        );
    }

    #[test]
    fn gamma_zero_disables_pruning() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 0, 1), rep(&fx, 2, 1, 2)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.5, 0.0));
        let query = [view(&fx, 0, 0, 9)];
        assert_eq!(index.candidates(&query, &fx.paths), Candidates::All);
        assert_eq!(
            index
                .candidates(&query, &fx.paths)
                .ids(2)
                .collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn range_index_posts_global_ids() {
        let fx = fixture();
        // Reps 2 and 3 of a hypothetical 4-rep model: a shard with base 2.
        let reps = vec![rep(&fx, 0, 0, 1), rep(&fx, 2, 1, 2)];
        let index = TagPathIndex::build_range(&reps, &fx.paths, SimParams::new(0.5, 0.8), 2);
        assert_eq!(index.covered(), 2..4);
        // Query matches the first shard rep (global id 2) only.
        let query = [view(&fx, 0, 0, 9)];
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![2])
        );
        // All-candidates fallbacks walk the shard's global range.
        let all = TagPathIndex::build_range(&reps, &fx.paths, SimParams::new(0.5, 0.0), 2);
        let c = all.candidates(&query, &fx.paths);
        assert_eq!(c, Candidates::All);
        assert_eq!(c.ids_in(all.covered()).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn candidate_ids_iterate_without_allocating() {
        let all = Candidates::All;
        assert_eq!(all.ids(3).len(), 3);
        assert_eq!(all.ids(3).collect::<Vec<_>>(), vec![0, 1, 2]);
        let some = Candidates::Some(vec![1, 4]);
        assert_eq!(some.ids(9).len(), 2);
        assert_eq!(some.ids(9).collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(some.ids_in(5..9).collect::<Vec<_>>(), vec![1, 4]);
    }

    #[test]
    fn empty_query_disables_pruning() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 0, 1)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.5, 0.8));
        assert_eq!(index.candidates(&[], &fx.paths), Candidates::All);
    }

    #[test]
    fn empty_vector_bucket_catches_content_matches() {
        let fx = fixture();
        // Rep 0 carries an empty vector: an empty query TCU has sim_C = 1
        // with it despite sharing no term.
        let reps = vec![rep(&fx, 2, 2, 1)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.0, 0.9));
        let query = [view(&fx, 0, 2, 9)];
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![0])
        );
    }

    #[test]
    fn structure_only_ignores_terms() {
        let fx = fixture();
        // f = 1: content cannot contribute, so a shared term alone must not
        // make a candidate.
        let reps = vec![rep(&fx, 2, 0, 1)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(1.0, 0.5));
        let query = [view(&fx, 0, 0, 9)]; // same vector, disjoint tags
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![])
        );
    }

    #[test]
    fn content_only_ignores_tags() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 1, 1)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(0.0, 0.5));
        let query = [view(&fx, 1, 0, 9)]; // shared tags, disjoint vectors
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![])
        );
    }

    #[test]
    fn empty_tag_path_bucket() {
        let fx = fixture();
        let reps = vec![rep(&fx, 3, 1, 1)]; // empty tag path
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::new(1.0, 0.5));
        let query = [view(&fx, 3, 0, 9)];
        assert_eq!(
            index.candidates(&query, &fx.paths),
            Candidates::Some(vec![0])
        );
    }

    #[test]
    fn diagnostics() {
        let fx = fixture();
        let reps = vec![rep(&fx, 0, 0, 1), rep(&fx, 1, 1, 2)];
        let index = TagPathIndex::build(&reps, &fx.paths, SimParams::default());
        assert_eq!(index.len(), 2);
        assert!(!index.is_empty());
        // Tags: dblp/article/title + dblp/inproceedings/title = 6 entries;
        // terms: t0, t1, t2 = 3 entries.
        assert_eq!(index.posting_entries(), 9);
        assert!(TagPathIndex::build(&[], &fx.paths, SimParams::default()).is_empty());
    }
}
