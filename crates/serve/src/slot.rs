//! The hot-reload seam: an epoch-versioned, atomically swappable model.
//!
//! A running server must be able to pick up a freshly trained model
//! without dropping a single request — the paper's collaborative protocol
//! assumes clustering is periodically re-run as the corpus evolves, and
//! the streaming refresh (`cxk_stream`) produces exactly such retrains.
//! The [`ModelSlot`] is the single swap point all workers share:
//!
//! * [`ModelSlot::swap`] installs a new [`TrainedModel`] under a short
//!   mutex and bumps the **epoch** (a monotonic `u64`, starting at 1 for
//!   the model the server booted with).
//! * [`ModelSlot::epoch`] is a lock-free atomic load — cheap enough for
//!   workers to poll once per connection.
//! * [`ModelSlot::current`] clones the `Arc` of the live
//!   [`EpochModel`] (epoch + model, immutable once published).
//!
//! Workers keep their own `(epoch, Classifier)` pair and lazily rebuild
//! the classifier (plus its `TagPathIndex`) when the polled epoch moves:
//! an in-flight request always finishes on the model it started with, the
//! next request on that worker picks up the new one, and no lock is held
//! while classifying. A request's response is therefore self-consistent
//! with exactly one epoch — never a mix of old and new representatives.

use cxk_core::TrainedModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, epoch-stamped published model.
#[derive(Debug)]
pub struct EpochModel {
    /// Monotonic version: 1 for the boot model, +1 per successful swap.
    pub epoch: u64,
    /// The model published at this epoch.
    pub model: TrainedModel,
}

/// The shared swap point for hot model reload (see the module docs).
#[derive(Debug)]
pub struct ModelSlot {
    /// The live model. The mutex is held only to clone or replace the
    /// `Arc` — never while classifying.
    current: Mutex<Arc<EpochModel>>,
    /// Lock-free mirror of the live epoch, polled by workers. It may lag
    /// or lead the mutexed value by an instant during a swap; workers
    /// always take the authoritative epoch from [`ModelSlot::current`],
    /// so the mirror only ever costs a redundant (idempotent) rebuild.
    epoch: AtomicU64,
}

impl ModelSlot {
    /// Publishes `model` as epoch 1.
    pub fn new(model: TrainedModel) -> Self {
        Self {
            current: Mutex::new(Arc::new(EpochModel { epoch: 1, model })),
            epoch: AtomicU64::new(1),
        }
    }

    /// The live epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The live epoch-stamped model.
    pub fn current(&self) -> Arc<EpochModel> {
        Arc::clone(&self.lock())
    }

    /// Atomically publishes `model` as the next epoch and returns it.
    /// In-flight work on the previous model keeps its `Arc` alive until
    /// the last worker drops it.
    pub fn swap(&self, model: TrainedModel) -> u64 {
        let mut current = self.lock();
        let epoch = current.epoch + 1;
        *current = Arc::new(EpochModel { epoch, model });
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<EpochModel>> {
        // A panic while holding this mutex is impossible (the critical
        // sections only move `Arc`s), but recover from poisoning anyway so
        // one crashed worker cannot wedge every other.
        match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_core::{CxkConfig, EngineBuilder, TrainedModel};
    use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

    fn model(extra_doc: bool) -> TrainedModel {
        let mut builder = DatasetBuilder::new(BuildOptions::default());
        let docs = [
            r#"<dblp><inproceedings key="m1"><author>A. Miner</author><title>mining clustering patterns trees</title></inproceedings></dblp>"#,
            r#"<dblp><article key="n1"><author>B. Netter</author><title>routing congestion networks protocols</title></article></dblp>"#,
        ];
        for doc in docs {
            builder.add_xml(doc).unwrap();
        }
        if extra_doc {
            builder
                .add_xml(
                    r#"<dblp><article key="n2"><author>B. Netter</author><title>packet routing networks latency</title></article></dblp>"#,
                )
                .unwrap();
        }
        let ds = builder.finish();
        let mut config = CxkConfig::new(2);
        config.params = SimParams::new(0.5, 0.5);
        EngineBuilder::from_cxk_config(&config)
            .build()
            .expect("valid config")
            .fit(&ds)
            .expect("fit")
            .into_model(&ds, BuildOptions::default())
    }

    #[test]
    fn swap_bumps_the_epoch_and_publishes_the_new_model() {
        let slot = ModelSlot::new(model(false));
        assert_eq!(slot.epoch(), 1);
        assert_eq!(slot.current().epoch, 1);
        let before_docs = slot.current().model.trained_documents;

        let e = slot.swap(model(true));
        assert_eq!(e, 2);
        assert_eq!(slot.epoch(), 2);
        let current = slot.current();
        assert_eq!(current.epoch, 2);
        assert_eq!(current.model.trained_documents, before_docs + 1);
    }

    #[test]
    fn old_epochs_stay_alive_while_referenced() {
        let slot = ModelSlot::new(model(false));
        let old = slot.current();
        slot.swap(model(true));
        // A worker still holding the old Arc keeps classifying against a
        // coherent model; nothing was freed or mutated under it.
        assert_eq!(old.epoch, 1);
        assert_eq!(old.model.trained_documents, 2);
        assert_eq!(slot.current().epoch, 2);
    }

    #[test]
    fn concurrent_swaps_and_reads_never_tear() {
        let slot = std::sync::Arc::new(ModelSlot::new(model(false)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = std::sync::Arc::clone(&slot);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let current = slot.current();
                        // Epochs are monotonic from any reader's view…
                        assert!(current.epoch >= last);
                        last = current.epoch;
                        // …and every published pair is internally
                        // consistent: odd epochs carry the 2-document
                        // model, even epochs the 3-document one.
                        let expect = if current.epoch % 2 == 1 { 2 } else { 3 };
                        assert_eq!(current.model.trained_documents, expect);
                    }
                })
            })
            .collect();
        for i in 0..50 {
            slot.swap(model(i % 2 == 0));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader");
        }
        assert_eq!(slot.epoch(), 51);
    }
}
