//! The hot-reload seam: an epoch-versioned, atomically swappable model.
//!
//! A running server must be able to pick up a freshly trained model
//! without dropping a single request — the paper's collaborative protocol
//! assumes clustering is periodically re-run as the corpus evolves, and
//! the streaming refresh (`cxk_stream`) produces exactly such retrains.
//! The [`ModelSlot`] is the single swap point all workers share:
//!
//! * [`ModelSlot::swap`] installs a new [`TrainedModel`] under a short
//!   mutex and bumps the **epoch** (a monotonic `u64`, starting at 1 for
//!   the model the server booted with).
//! * [`ModelSlot::epoch`] is a lock-free atomic load — cheap enough for
//!   workers to poll once per connection.
//! * [`ModelSlot::current`] clones the `Arc` of the live
//!   [`EpochModel`] (epoch + model, immutable once published).
//!
//! An epoch publishes the model behind an `Arc` and — when the slot was
//! built with [`ModelSlot::with_shards`] — **one** shared
//! [`ShardedEngine`] over it: the whole worker pool scatters against the
//! same immutable shard set, so resident index memory is per-epoch, not
//! per-worker. The engine for the next epoch is built *before* the slot's
//! mutex is taken, so the critical section still only moves `Arc`s and a
//! swap never stalls concurrent readers behind an index build.
//!
//! Workers keep their own `(epoch, ClassifyEngine)` pair and lazily
//! rebuild their engine (a full classifier in replicated mode, a
//! lightweight session over the shared shard set in sharded mode) when
//! the polled epoch moves: an in-flight request always finishes on the
//! model it started with, the next request on that worker picks up the
//! new one, and no lock is held while classifying. A request's response
//! is therefore self-consistent with exactly one epoch — never a mix of
//! old and new representatives.

use crate::shard::ShardedEngine;
use crate::tree::{TreeConfig, TreeEngine};
use cxk_core::TrainedModel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An immutable, epoch-stamped published model.
#[derive(Debug)]
pub struct EpochModel {
    /// Monotonic version: 1 for the boot model, +1 per successful swap.
    pub epoch: u64,
    /// The model published at this epoch, shared by every worker.
    pub model: Arc<TrainedModel>,
    /// The epoch's shared scatter/gather engine, when the slot was built
    /// with a shard count; `None` means workers replicate a full index
    /// each.
    pub sharded: Option<Arc<ShardedEngine>>,
    /// The epoch's shared representative tree, when the slot was built
    /// with a [`TreeConfig`]; like the sharded engine it is built
    /// off-lock per swap and shared by the whole pool.
    pub tree: Option<Arc<TreeEngine>>,
}

/// The shared swap point for hot model reload (see the module docs).
#[derive(Debug)]
pub struct ModelSlot {
    /// The live model. The mutex is held only to clone or replace the
    /// `Arc` — never while classifying or building an index.
    current: Mutex<Arc<EpochModel>>,
    /// Lock-free mirror of the live epoch, polled by workers. It may lag
    /// or lead the mutexed value by an instant during a swap; workers
    /// always take the authoritative epoch from [`ModelSlot::current`],
    /// so the mirror only ever costs a redundant (idempotent) rebuild.
    epoch: AtomicU64,
    /// Shard count every epoch's engine is built with; `None` = replicated.
    shards: Option<usize>,
    /// Tree shape every epoch's representative tree is built with;
    /// `None` = no tree.
    tree: Option<TreeConfig>,
}

impl ModelSlot {
    /// Publishes `model` as epoch 1 in replicated mode (each worker builds
    /// its own full index).
    pub fn new(model: TrainedModel) -> Self {
        Self::with_shards(model, None)
    }

    /// Publishes `model` as epoch 1; with `shards = Some(s)` every epoch
    /// carries one shared [`ShardedEngine`] partitioning the
    /// representatives across `s` shards.
    pub fn with_shards(model: TrainedModel, shards: Option<usize>) -> Self {
        Self::with_layout(model, shards, None)
    }

    /// Publishes `model` as epoch 1 under an explicit engine layout:
    /// a shard count, a [`TreeConfig`], or neither (replicated). The
    /// layouts are mutually exclusive by construction at the server
    /// level; if both are passed the sharded engine wins, matching
    /// [`crate::ClassifyEngine::for_epoch`] precedence.
    pub fn with_layout(
        model: TrainedModel,
        shards: Option<usize>,
        tree: Option<TreeConfig>,
    ) -> Self {
        Self {
            current: Mutex::new(Arc::new(Self::publish(model, shards, tree, 1))),
            epoch: AtomicU64::new(1),
            shards,
            tree,
        }
    }

    /// The shard count epochs are built with (`None` = replicated).
    pub fn shards(&self) -> Option<usize> {
        self.shards
    }

    /// The tree shape epochs are built with (`None` = no tree).
    pub fn tree(&self) -> Option<TreeConfig> {
        self.tree
    }

    /// The live epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The live epoch-stamped model.
    pub fn current(&self) -> Arc<EpochModel> {
        Arc::clone(&self.lock())
    }

    /// Atomically publishes `model` as the next epoch and returns it.
    /// In-flight work on the previous model keeps its `Arc` alive until
    /// the last worker drops it. In sharded mode the new epoch's engine is
    /// built *before* the lock is taken.
    pub fn swap(&self, model: TrainedModel) -> u64 {
        // Build the (potentially expensive) derived state off-lock; only
        // the publish itself synchronizes.
        let staged = Self::publish(model, self.shards, self.tree, 0);
        let mut current = self.lock();
        let epoch = current.epoch + 1;
        *current = Arc::new(EpochModel { epoch, ..staged });
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Assembles an epoch: the `Arc`ed model plus — in sharded or tree
    /// mode — the one engine the pool will share.
    fn publish(
        model: TrainedModel,
        shards: Option<usize>,
        tree: Option<TreeConfig>,
        epoch: u64,
    ) -> EpochModel {
        let model = Arc::new(model);
        let sharded = shards.map(|s| Arc::new(ShardedEngine::build(Arc::clone(&model), s)));
        let tree = tree.map(|cfg| Arc::new(TreeEngine::build(Arc::clone(&model), cfg)));
        EpochModel {
            epoch,
            model,
            sharded,
            tree,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<EpochModel>> {
        // A panic while holding this mutex is impossible (the critical
        // sections only move `Arc`s), but recover from poisoning anyway so
        // one crashed worker cannot wedge every other.
        match self.current.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_core::{CxkConfig, EngineBuilder, TrainedModel};
    use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

    fn model(extra_doc: bool) -> TrainedModel {
        let mut builder = DatasetBuilder::new(BuildOptions::default());
        let docs = [
            r#"<dblp><inproceedings key="m1"><author>A. Miner</author><title>mining clustering patterns trees</title></inproceedings></dblp>"#,
            r#"<dblp><article key="n1"><author>B. Netter</author><title>routing congestion networks protocols</title></article></dblp>"#,
        ];
        for doc in docs {
            builder.add_xml(doc).unwrap();
        }
        if extra_doc {
            builder
                .add_xml(
                    r#"<dblp><article key="n2"><author>B. Netter</author><title>packet routing networks latency</title></article></dblp>"#,
                )
                .unwrap();
        }
        let ds = builder.finish();
        let mut config = CxkConfig::new(2);
        config.params = SimParams::new(0.5, 0.5);
        EngineBuilder::from_cxk_config(&config)
            .build()
            .expect("valid config")
            .fit(&ds)
            .expect("fit")
            .into_model(&ds, BuildOptions::default())
    }

    #[test]
    fn swap_bumps_the_epoch_and_publishes_the_new_model() {
        let slot = ModelSlot::new(model(false));
        assert_eq!(slot.epoch(), 1);
        assert_eq!(slot.current().epoch, 1);
        assert!(slot.current().sharded.is_none(), "replicated by default");
        let before_docs = slot.current().model.trained_documents;

        let e = slot.swap(model(true));
        assert_eq!(e, 2);
        assert_eq!(slot.epoch(), 2);
        let current = slot.current();
        assert_eq!(current.epoch, 2);
        assert_eq!(current.model.trained_documents, before_docs + 1);
    }

    #[test]
    fn sharded_slots_publish_one_engine_per_epoch() {
        let slot = ModelSlot::with_shards(model(false), Some(3));
        assert_eq!(slot.shards(), Some(3));
        let boot = slot.current();
        let engine = boot.sharded.as_ref().expect("sharded epoch");
        assert_eq!(engine.shard_count(), 3);
        // The engine scores against exactly the published model.
        assert!(std::sync::Arc::ptr_eq(engine.model(), &boot.model));
        // Every reader of this epoch sees the *same* engine allocation.
        assert!(std::sync::Arc::ptr_eq(
            slot.current().sharded.as_ref().unwrap(),
            engine
        ));

        let e = slot.swap(model(true));
        assert_eq!(e, 2);
        let next = slot.current();
        let next_engine = next.sharded.as_ref().expect("sharded epoch");
        assert!(
            !std::sync::Arc::ptr_eq(next_engine, engine),
            "a swap rebuilds the shard set"
        );
        assert!(std::sync::Arc::ptr_eq(next_engine.model(), &next.model));
        // The old epoch's engine is still coherent for in-flight holders.
        assert_eq!(engine.model().trained_documents, 2);
    }

    #[test]
    fn tree_slots_publish_one_tree_per_epoch() {
        let cfg = TreeConfig { branch: 2, beam: 1 };
        let slot = ModelSlot::with_layout(model(false), None, Some(cfg));
        assert_eq!(slot.tree(), Some(cfg));
        assert_eq!(slot.shards(), None);
        let boot = slot.current();
        assert!(boot.sharded.is_none());
        let tree = boot.tree.as_ref().expect("tree epoch");
        assert_eq!(tree.config(), cfg);
        assert!(std::sync::Arc::ptr_eq(tree.model(), &boot.model));
        assert!(std::sync::Arc::ptr_eq(
            slot.current().tree.as_ref().unwrap(),
            tree
        ));

        let e = slot.swap(model(true));
        assert_eq!(e, 2);
        let next = slot.current();
        let next_tree = next.tree.as_ref().expect("tree epoch");
        assert!(
            !std::sync::Arc::ptr_eq(next_tree, tree),
            "a swap rebuilds the tree"
        );
        assert!(std::sync::Arc::ptr_eq(next_tree.model(), &next.model));
        assert_eq!(tree.model().trained_documents, 2);
    }

    #[test]
    fn old_epochs_stay_alive_while_referenced() {
        let slot = ModelSlot::new(model(false));
        let old = slot.current();
        slot.swap(model(true));
        // A worker still holding the old Arc keeps classifying against a
        // coherent model; nothing was freed or mutated under it.
        assert_eq!(old.epoch, 1);
        assert_eq!(old.model.trained_documents, 2);
        assert_eq!(slot.current().epoch, 2);
    }

    #[test]
    fn concurrent_swaps_and_reads_never_tear() {
        let slot = std::sync::Arc::new(ModelSlot::with_shards(model(false), Some(2)));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let slot = std::sync::Arc::clone(&slot);
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let current = slot.current();
                        // Epochs are monotonic from any reader's view…
                        assert!(current.epoch >= last);
                        last = current.epoch;
                        // …and every published pair is internally
                        // consistent: odd epochs carry the 2-document
                        // model, even epochs the 3-document one — and the
                        // shard engine always wraps that same model.
                        let expect = if current.epoch % 2 == 1 { 2 } else { 3 };
                        assert_eq!(current.model.trained_documents, expect);
                        let engine = current.sharded.as_ref().expect("sharded");
                        assert!(std::sync::Arc::ptr_eq(engine.model(), &current.model));
                    }
                })
            })
            .collect();
        for i in 0..50 {
            slot.swap(model(i % 2 == 0));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader");
        }
        assert_eq!(slot.epoch(), 51);
    }
}
