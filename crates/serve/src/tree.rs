//! Hierarchical representative tree: sublinear assignment with a
//! beam-width accuracy knob.
//!
//! Every other serving strategy — brute force, the pruned
//! `TagPathIndex`, sharded, remote — is O(k) per tuple in the worst
//! case: γ = 0 and empty queries score every representative, and even
//! the pruned index degrades to the full scan when the query's tag
//! paths touch every posting list. This module trades exactness for a
//! logarithmic candidate walk, the `simγJ` analogue of the K-tree
//! cluster tree (De Vries & Geva; see PAPERS.md): the snapshot's `k`
//! representatives become the leaves of a bottom-up tree whose internal
//! nodes are **merged representatives** (the paper's own
//! `ComputeGlobalRepresentative`, reused via
//! [`cxk_core::merge_representatives`]), and assignment descends the
//! tree greedily before an exact re-rank of the reached leaves.
//!
//! # Build
//!
//! Merged representatives only route well when they merge *similar*
//! children: `ComputeGlobalRepresentative` refines toward items that
//! γ-represent all its members, so a node over `B` unrelated clusters
//! sheds the minority clusters' items entirely and queries destined for
//! them score ~0 at that node. The build therefore first *groups* the
//! `k` leaves by similarity — a greedy pass that seeds each group with
//! the lowest unassigned id and pulls in its `B − 1` most-`simγJ`-
//! similar unassigned peers (ties to the lower id) — and records the
//! resulting permutation as `leaf_order`. Level 0 merges consecutive
//! groups of `leaf_order` (each child weighted 1), and levels repeat
//! over chunks of `B` nodes (weighted by covered leaf count) until a
//! level has at most `B` nodes. A node's `leaves: Range<u32>` is a
//! contiguous range of *positions* in `leaf_order`, and child indices
//! derive from the chunking arithmetic. `k ≤ B` builds no internal
//! levels at all and the engine degenerates to the exact full scan.
//!
//! # Descent and re-rank
//!
//! A query tuple starts from the whole top level, scores `simγJ`
//! against each frontier node's merged representative, keeps the top
//! `W` nodes (the **beam**; ties broken toward the lower node index),
//! and recurses into their children. At the bottom internal level the
//! kept nodes' leaf positions map through `leaf_order` to ids, sorted
//! ascending, and the winner is chosen by the *unchanged* exact rule
//! over exactly those candidates:
//! `argmax_tuple` with strict `>`, ties to the lowest id, trash when
//! the best similarity is 0. Document aggregation is byte-for-byte the
//! code every other strategy runs.
//!
//! # Exactness contract
//!
//! The descent is a heuristic: a merged representative can score 0
//! against a query whose true winner hides below it, so small beams can
//! miss the brute-force argmax. Two properties are pinned by tests
//! instead of a proof:
//!
//! * **Full beam ⇒ bit-identical.** When `W` is at least the widest
//!   level's node count ([`TreeEngine::is_exact`]), every level keeps
//!   everything, the candidate list is exactly `0..k`, and the result —
//!   including the per-tuple `candidates` count — equals
//!   `classify_brute`.
//! * **Degenerate queries fall back.** γ = 0 and empty tuples make
//!   `simγJ` identically 0 up the whole tree, so descending would keep
//!   arbitrary subtrees; those tuples score the full range instead
//!   (counted in [`TreeStats::fallbacks`]), matching the `TagPathIndex`
//!   fallback contract.
//! * **Trash is never invented.** A pruned re-rank whose best
//!   similarity is 0 would route the tuple to trash — but the miss
//!   might hide outside the beam, so such tuples are *rescued* with a
//!   full-range scan (also counted in [`TreeStats::fallbacks`]). A
//!   trash verdict from the tree is therefore always backed by an
//!   exhaustive scan, at any beam width.
//!
//! The accuracy/latency trade-off at small beams is a *measured curve*,
//! not a claim: `serve_throughput` emits `tree-*` rows recording
//! docs/sec, agreement-vs-brute, and `cxk_eval::f_measure` against
//! synthetic ground truth.
//!
//! # Memory model
//!
//! Exactly the sharded engine's: a [`TreeEngine`] is immutable once
//! built, lives behind an `Arc` published per epoch by the `slot`
//! module, and is shared by every worker; each worker's mutable parsing
//! state is its own [`TreeClassifier`] (a `QuerySession`), so resident
//! tree memory is constant in the worker count.

use crate::classify::{
    aggregate_document, argmax_tuple, DocumentAssignment, QuerySession, TupleAssignment,
};
use cxk_core::rep::{RepItem, Representative};
use cxk_core::{merge_representatives, TrainedModel};
use cxk_transact::item::ItemView;
use cxk_transact::txsim::sim_gamma_j;
use cxk_transact::{SimCtx, TagPathSimTable};
use cxk_xml::parser::XmlError;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default branching factor `B` for `--tree`.
pub const DEFAULT_BRANCH: usize = 8;
/// Default beam width `W` for `--tree`, the measured knee of the
/// accuracy curve: ≥ 0.95 agreement-vs-brute on the `serve_throughput`
/// large-k configuration while still scoring well under `k`
/// representatives per document.
pub const DEFAULT_BEAM: usize = 3;

/// Shape of the representative tree: branching factor `B` and beam
/// width `W`. Both are clamped at build time (`B ≥ 2`, `W ≥ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Children per internal node.
    pub branch: usize,
    /// Subtrees kept per level during descent.
    pub beam: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            branch: DEFAULT_BRANCH,
            beam: DEFAULT_BEAM,
        }
    }
}

/// One internal node: the merged representative of a contiguous range
/// of leaf *positions* (indices into the engine's `leaf_order`).
struct TreeNode {
    /// The merged representative scored during descent.
    rep: Representative,
    /// Positions in `leaf_order` covered, always contiguous.
    leaves: Range<u32>,
}

/// Monotonic whole-tree counters, updated by every tuple assignment.
/// Padded to a cache line for the same reason the shard counters are:
/// relaxed `fetch_add`s from every worker must not share a line with
/// anything colder.
#[derive(Debug, Default)]
#[repr(align(64))]
struct TreeCounters {
    /// Tuples assigned through this engine.
    tuples: AtomicU64,
    /// Internal nodes scored during descents.
    nodes_visited: AtomicU64,
    /// Leaf representatives scored in re-ranks (incl. fallback scans).
    reps_scored: AtomicU64,
    /// Tuples that ended up scoring the full range anyway: degenerate
    /// queries (γ = 0 / empty) that bypassed the descent, plus pruned
    /// re-ranks rescued from a zero-similarity (would-be trash) result.
    fallbacks: AtomicU64,
}

/// A point-in-time copy of a tree engine's counters plus its static
/// shape, surfaced by `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Branching factor `B` (post-clamp).
    pub branch: usize,
    /// Beam width `W` (post-clamp).
    pub beam: usize,
    /// Internal levels (0 when `k ≤ B`: the tree is a plain scan).
    pub depth: usize,
    /// Total internal nodes across all levels.
    pub nodes: usize,
    /// Tuples assigned so far.
    pub tuples: u64,
    /// Internal nodes scored during descents so far.
    pub nodes_visited: u64,
    /// Leaf representatives scored so far (re-ranks + fallback scans).
    pub reps_scored: u64,
    /// Tuples that fell back to the full scan: degenerate queries
    /// (γ = 0 / empty) plus zero-similarity rescues.
    pub fallbacks: u64,
}

/// The shared, immutable representative tree for one model epoch.
pub struct TreeEngine {
    model: Arc<TrainedModel>,
    config: TreeConfig,
    /// Similarity-grouped permutation of the leaf ids `0..k`: position
    /// `p` holds the representative id stored at tree position `p`.
    /// Empty for level-less (exact) engines.
    leaf_order: Vec<u32>,
    /// Internal levels bottom-up: `levels[0]` merges the leaves, the
    /// last level is the (≤ `B`-wide) top. Empty when `k ≤ B`.
    levels: Vec<Vec<TreeNode>>,
    counters: TreeCounters,
}

impl TreeEngine {
    /// Builds the tree over `model`'s representatives. `branch` is
    /// clamped to ≥ 2 and `beam` to ≥ 1; `k ≤ branch` produces a
    /// level-less (exact) engine.
    pub fn build(model: Arc<TrainedModel>, config: TreeConfig) -> Self {
        let config = TreeConfig {
            branch: config.branch.max(2),
            beam: config.beam.max(1),
        };
        let branch = config.branch;
        let mut levels: Vec<Vec<TreeNode>> = Vec::new();
        let mut leaf_order: Vec<u32> = Vec::new();
        if model.k() > branch {
            // Merging needs a similarity context covering the
            // representatives' tag paths; merged items always come from
            // their children's item pool, so the model's own tag-path
            // table covers every level.
            let rep_tag_paths = model.rep_tag_paths();
            let tag_sim = TagPathSimTable::build(&rep_tag_paths, &model.paths);
            let ctx = SimCtx::new(&tag_sim, model.params);

            leaf_order = Self::group_leaves(&ctx, &model, branch);
            let mut level: Vec<TreeNode> = leaf_order
                .chunks(branch)
                .enumerate()
                .map(|(i, chunk)| {
                    let start = (i * branch) as u32;
                    let weighted: Vec<(&Representative, u64)> = chunk
                        .iter()
                        .filter_map(|&id| model.reps.get(id as usize))
                        .map(|rep| (rep, 1))
                        .collect();
                    TreeNode {
                        rep: merge_representatives(&ctx, &weighted),
                        leaves: start..start + chunk.len() as u32,
                    }
                })
                .collect();
            while level.len() > branch {
                let next: Vec<TreeNode> = level
                    .chunks(branch)
                    .map(|chunk| {
                        let weighted: Vec<(&Representative, u64)> = chunk
                            .iter()
                            .map(|node| (&node.rep, node.leaves.len() as u64))
                            .collect();
                        let leaves = match (chunk.first(), chunk.last()) {
                            (Some(first), Some(last)) => first.leaves.start..last.leaves.end,
                            _ => 0..0,
                        };
                        TreeNode {
                            rep: merge_representatives(&ctx, &weighted),
                            leaves,
                        }
                    })
                    .collect();
                levels.push(level);
                level = next;
            }
            levels.push(level);
        }
        Self {
            model,
            config,
            leaf_order,
            levels,
            counters: TreeCounters::default(),
        }
    }

    /// Greedy average-link grouping of the `k` leaves: seed each group
    /// with the lowest unassigned id, then repeatedly add the
    /// unassigned representative with the highest *mean* `simγJ` to the
    /// current group members (score descending, ties to the lower id)
    /// until the group holds `branch` leaves. Coherent groups are what
    /// make the merged node representatives informative routers —
    /// merging unrelated clusters sheds the minority's items during
    /// refinement. The pairwise similarities are computed once
    /// (O(k²) `simγJ` evaluations), paid per epoch at build time.
    fn group_leaves(ctx: &SimCtx<'_>, model: &TrainedModel, branch: usize) -> Vec<u32> {
        let k = model.reps.len();
        let rep_views: Vec<Vec<ItemView<'_>>> = model.reps.iter().map(|r| r.views()).collect();
        // Symmetric pairwise similarity matrix, row-major.
        let mut sim = vec![0.0f64; k * k];
        for i in 0..k {
            for j in i + 1..k {
                let s = sim_gamma_j(ctx, &rep_views[i], &rep_views[j]);
                sim[i * k + j] = s;
                sim[j * k + i] = s;
            }
        }
        let mut assigned = vec![false; k];
        let mut order: Vec<u32> = Vec::with_capacity(k);
        for seed in 0..k {
            if assigned[seed] {
                continue;
            }
            assigned[seed] = true;
            let group_start = order.len();
            order.push(seed as u32);
            while order.len() - group_start < branch {
                let members = &order[group_start..];
                let mut best: Option<(f64, usize)> = None;
                for j in seed + 1..k {
                    if assigned[j] {
                        continue;
                    }
                    let mean = members
                        .iter()
                        .map(|&m| sim[m as usize * k + j])
                        .sum::<f64>()
                        / members.len() as f64;
                    let better = match best {
                        None => true,
                        Some((score, _)) => mean > score,
                    };
                    if better {
                        best = Some((mean, j));
                    }
                }
                match best {
                    Some((_, j)) => {
                        assigned[j] = true;
                        order.push(j as u32);
                    }
                    None => break,
                }
            }
        }
        order
    }

    /// The shared model.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// The (clamped) tree shape.
    pub fn config(&self) -> TreeConfig {
        self.config
    }

    /// Internal levels (0 when `k ≤ B`).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total internal nodes.
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Whether every descent provably covers all leaves: no internal
    /// levels, or a beam at least as wide as the widest level (the
    /// bottom one). Exact engines are bit-identical to brute force.
    pub fn is_exact(&self) -> bool {
        match self.levels.first() {
            Some(widest) => self.config.beam >= widest.len(),
            None => true,
        }
    }

    /// Counters + shape since this engine (epoch) was built.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            branch: self.config.branch,
            beam: self.config.beam,
            depth: self.depth(),
            nodes: self.node_count(),
            tuples: self.counters.tuples.load(Ordering::Relaxed),
            nodes_visited: self.counters.nodes_visited.load(Ordering::Relaxed),
            reps_scored: self.counters.reps_scored.load(Ordering::Relaxed),
            fallbacks: self.counters.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Beam descent for one tuple: returns the ascending candidate leaf
    /// ids and the number of internal nodes scored. Only called with
    /// non-empty levels and a non-degenerate query.
    fn descend(&self, ctx: &SimCtx<'_>, views: &[ItemView<'_>]) -> (Vec<u32>, u64) {
        let mut visited = 0u64;
        let top_len = self.levels.last().map(Vec::len).unwrap_or(0);
        let mut frontier: Vec<usize> = (0..top_len).collect();
        for depth in (0..self.levels.len()).rev() {
            let level = &self.levels[depth];
            let mut scored: Vec<(f64, usize)> = Vec::with_capacity(frontier.len());
            for &i in &frontier {
                if let Some(node) = level.get(i) {
                    scored.push((sim_gamma_j(ctx, views, &node.rep.views()), i));
                    visited += 1;
                }
            }
            // Score descending, node index ascending on ties — the
            // deterministic lowest-id bias every exact path shares.
            scored.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
            scored.truncate(self.config.beam);
            let mut kept: Vec<usize> = scored.into_iter().map(|(_, i)| i).collect();
            kept.sort_unstable();
            if depth == 0 {
                let mut ids: Vec<u32> = Vec::new();
                for i in kept {
                    if let Some(node) = level.get(i) {
                        for pos in node.leaves.clone() {
                            if let Some(&id) = self.leaf_order.get(pos as usize) {
                                ids.push(id);
                            }
                        }
                    }
                }
                // Ascending ids: the exact re-rank's lowest-id tie-break
                // sees candidates in the same order every strategy uses.
                ids.sort_unstable();
                return (ids, visited);
            }
            let below = self.levels[depth - 1].len();
            frontier = kept
                .iter()
                .flat_map(|&i| i * self.config.branch..((i + 1) * self.config.branch).min(below))
                .collect();
        }
        // Defensive: an empty tree descends nowhere — the callers gate
        // on `levels.is_empty()`, but fall back to the full range
        // rather than silently returning no candidates.
        ((0..self.model.k() as u32).collect(), visited)
    }

    /// Assigns one query tuple: beam descent + exact re-rank when
    /// `pruned`, the full-range exact scan otherwise (and always for
    /// degenerate tuples and level-less trees).
    fn assign_tuple(
        &self,
        session: &QuerySession,
        views: &[ItemView<'_>],
        rep_views: &[Vec<ItemView<'_>>],
        pruned: bool,
    ) -> TupleAssignment {
        let k = self.model.k() as u32;
        let ctx = session.sim_ctx(self.model.params);
        self.counters.tuples.fetch_add(1, Ordering::Relaxed);
        // γ = 0 and empty queries score 0 against every merged node:
        // the descent would keep arbitrary subtrees, so scan instead —
        // the same degenerate cases where the inverted index falls back
        // to `Candidates::All`.
        let degenerate = views.is_empty() || self.model.params.gamma <= 0.0;
        if !pruned || degenerate || self.levels.is_empty() {
            if pruned && degenerate {
                self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            self.counters
                .reps_scored
                .fetch_add(u64::from(k), Ordering::Relaxed);
            let (cluster, similarity) = argmax_tuple(&ctx, views, rep_views, 0..k, k);
            return TupleAssignment {
                cluster,
                similarity,
                candidates: k as usize,
            };
        }
        let (ids, visited) = self.descend(&ctx, views);
        self.counters
            .nodes_visited
            .fetch_add(visited, Ordering::Relaxed);
        self.counters
            .reps_scored
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
        let candidates = ids.len();
        let (cluster, similarity) = argmax_tuple(&ctx, views, rep_views, ids.into_iter(), k);
        // Zero rescue: a pruned re-rank that found nothing (the tuple
        // would go to trash) is re-run over the full range — trash is
        // only ever declared after an exhaustive scan, so the tree
        // never *invents* trash the brute path wouldn't produce.
        if similarity == 0.0 && candidates < k as usize {
            self.counters.fallbacks.fetch_add(1, Ordering::Relaxed);
            self.counters
                .reps_scored
                .fetch_add(u64::from(k) - candidates as u64, Ordering::Relaxed);
            let (cluster, similarity) = argmax_tuple(&ctx, views, rep_views, 0..k, k);
            return TupleAssignment {
                cluster,
                similarity,
                candidates: k as usize,
            };
        }
        TupleAssignment {
            cluster,
            similarity,
            candidates,
        }
    }
}

impl std::fmt::Debug for TreeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreeEngine")
            .field("k", &self.model.k())
            .field("branch", &self.config.branch)
            .field("beam", &self.config.beam)
            .field("depth", &self.depth())
            .field("nodes", &self.node_count())
            .finish()
    }
}

/// A per-worker classification session over a shared [`TreeEngine`]:
/// the worker's own mutable `QuerySession` plus an `Arc` of the epoch's
/// tree. Building one copies no tree state.
pub struct TreeClassifier {
    engine: Arc<TreeEngine>,
    session: QuerySession,
}

impl TreeClassifier {
    /// Builds a worker session over `engine`.
    pub fn new(engine: Arc<TreeEngine>) -> Self {
        let session = QuerySession::new(engine.model());
        Self { engine, session }
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<TreeEngine> {
        &self.engine
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        self.engine.model()
    }

    /// Number of proper clusters `k`.
    pub fn k(&self) -> usize {
        self.model().k()
    }

    /// The trash cluster's id (`k`).
    pub fn trash_id(&self) -> u32 {
        self.model().trash_id()
    }

    /// Classifies one XML document by beam descent + exact re-rank per
    /// tuple.
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, true)
    }

    /// Classifies one XML document scoring every representative (the
    /// reference the descent's agreement is measured against).
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify_brute(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, false)
    }

    fn classify_impl(&mut self, xml: &str, pruned: bool) -> Result<DocumentAssignment, XmlError> {
        let model = self.engine.model();
        let query = self.session.extract(xml, &model.term_stats)?;
        let rep_views: Vec<Vec<ItemView<'_>>> = model.reps.iter().map(|r| r.views()).collect();
        let assignments = query
            .transactions
            .iter()
            .map(|tuple| {
                let views: Vec<ItemView<'_>> = tuple.iter().map(RepItem::view).collect();
                self.engine
                    .assign_tuple(&self.session, &views, &rep_views, pruned)
            })
            .collect();
        Ok(aggregate_document(model.k(), assignments, query.capped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::Classifier;
    use cxk_core::{CxkConfig, EngineBuilder};
    use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

    fn doc(topic: usize, i: usize) -> String {
        let topics = [
            ("mining", "mining frequent patterns clustering trees"),
            ("network", "routing congestion protocols networks"),
            ("theory", "automata complexity reductions proofs"),
            ("systems", "kernels scheduling caches concurrency"),
            ("vision", "segmentation detection convolution images"),
            ("storage", "logs compaction snapshots replication"),
        ];
        let (key, title) = topics[topic % topics.len()];
        format!(
            r#"<dblp><article key="{key}{i}"><author>A. {key}</author><title>{title} {key}{i}</title><journal>J{topic}</journal></article></dblp>"#,
        )
    }

    fn model(k: usize, gamma: f64) -> TrainedModel {
        let mut builder = DatasetBuilder::new(BuildOptions::default());
        for topic in 0..6 {
            for i in 0..3 {
                builder.add_xml(&doc(topic, i)).unwrap();
            }
        }
        let ds = builder.finish();
        let mut config = CxkConfig::new(k);
        config.params = SimParams::new(0.5, gamma);
        config.seed = 5;
        EngineBuilder::from_cxk_config(&config)
            .build()
            .expect("valid test config")
            .fit(&ds)
            .expect("fit succeeds")
            .into_model(&ds, BuildOptions::default())
    }

    fn assert_same(a: &DocumentAssignment, b: &DocumentAssignment, what: &str) {
        assert_eq!(a.cluster, b.cluster, "{what}: cluster");
        assert_eq!(a.score, b.score, "{what}: score must be bit-identical");
        assert_eq!(a.capped, b.capped, "{what}: capped");
        assert_eq!(a.tuples.len(), b.tuples.len(), "{what}");
        for (ta, tb) in a.tuples.iter().zip(&b.tuples) {
            assert_eq!(ta.cluster, tb.cluster, "{what}");
            assert_eq!(ta.similarity, tb.similarity, "{what}");
            assert_eq!(ta.candidates, tb.candidates, "{what}: candidates");
        }
    }

    #[test]
    fn build_shape_covers_all_leaves() {
        for (k, branch) in [(1, 2), (2, 2), (3, 2), (5, 2), (6, 3), (6, 2), (4, 8)] {
            let engine = TreeEngine::build(Arc::new(model(k, 0.5)), TreeConfig { branch, beam: 1 });
            if k <= branch {
                assert_eq!(engine.depth(), 0, "k={k} B={branch}: no levels");
                assert!(engine.is_exact());
                continue;
            }
            assert!(engine.depth() >= 1, "k={k} B={branch}");
            // The grouped leaf order is a permutation of 0..k.
            let mut sorted = engine.leaf_order.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..k as u32).collect::<Vec<_>>(),
                "k={k} B={branch}: leaf_order permutes 0..k"
            );
            for (d, level) in engine.levels.iter().enumerate() {
                // Every level covers positions 0..k contiguously.
                let mut next = 0u32;
                for node in level {
                    assert_eq!(node.leaves.start, next, "k={k} B={branch} level {d}");
                    next = node.leaves.end;
                }
                assert_eq!(next as usize, k, "k={k} B={branch} level {d}");
            }
            let top = engine.levels.last().unwrap();
            assert!(top.len() <= branch, "top level fits in one beam step");
            assert!(!top.is_empty());
        }
    }

    #[test]
    fn full_beam_is_bit_identical_to_brute_force() {
        for gamma in [0.0, 0.5] {
            let model = Arc::new(model(5, gamma));
            let mut brute = Classifier::shared(Arc::clone(&model));
            for branch in [2, 3] {
                let engine = Arc::new(TreeEngine::build(
                    Arc::clone(&model),
                    TreeConfig { branch, beam: 5 },
                ));
                assert!(engine.is_exact(), "beam 5 ≥ widest level for k=5");
                let mut tree = TreeClassifier::new(Arc::clone(&engine));
                for topic in 0..6 {
                    let xml = doc(topic, 17);
                    let a = tree.classify(&xml).expect("tree");
                    let b = brute.classify_brute(&xml).expect("brute");
                    assert_same(&a, &b, &format!("γ={gamma} B={branch}"));
                }
                // The alien document degrades to trash identically.
                let alien = r#"<menu><entree id="e1"><flavor>umami</flavor></entree></menu>"#;
                let a = tree.classify(alien).expect("tree");
                let b = brute.classify_brute(alien).expect("brute");
                assert_same(&a, &b, &format!("γ={gamma} B={branch} alien"));
            }
        }
    }

    #[test]
    fn small_beam_prunes_candidates_below_k() {
        let model = Arc::new(model(6, 0.5));
        let engine = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch: 2, beam: 1 },
        ));
        assert!(!engine.is_exact());
        let mut tree = TreeClassifier::new(Arc::clone(&engine));
        let report = tree.classify(&doc(0, 9)).expect("classify");
        assert!(!report.tuples.is_empty());
        for t in &report.tuples {
            assert!(
                t.candidates < 6,
                "beam 1 over B=2 must re-rank < k leaves, got {}",
                t.candidates
            );
            assert!(t.candidates >= 1);
        }
        let stats = engine.stats();
        assert_eq!(stats.tuples, report.tuples.len() as u64);
        assert!(stats.nodes_visited > 0);
        assert!(stats.reps_scored < 6 * stats.tuples);
        assert_eq!(stats.fallbacks, 0);
    }

    #[test]
    fn zero_similarity_rescues_to_full_scan() {
        // An alien document scores 0 against every candidate the beam
        // reaches; the rescue must rescan the full range so the trash
        // verdict (and every counter) matches brute force exactly.
        let model = Arc::new(model(6, 0.5));
        let engine = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch: 2, beam: 1 },
        ));
        assert!(!engine.is_exact());
        let mut tree = TreeClassifier::new(Arc::clone(&engine));
        let mut brute = Classifier::shared(Arc::clone(&model));
        let alien = r#"<menu><entree id="e1"><flavor>umami</flavor></entree></menu>"#;
        let a = tree.classify(alien).expect("tree");
        let b = brute.classify_brute(alien).expect("brute");
        assert_same(&a, &b, "rescued alien");
        assert_eq!(a.cluster, tree.trash_id());
        assert!(a.tuples.iter().all(|t| t.candidates == 6));
        let stats = engine.stats();
        assert_eq!(stats.fallbacks, stats.tuples, "every tuple was rescued");
    }

    #[test]
    fn degenerate_queries_fall_back_to_full_scan() {
        // γ = 0: every tuple must bypass the descent and score all k.
        let model = Arc::new(model(5, 0.0));
        let engine = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch: 2, beam: 1 },
        ));
        let mut tree = TreeClassifier::new(Arc::clone(&engine));
        let report = tree.classify(&doc(1, 4)).expect("classify");
        assert!(report.tuples.iter().all(|t| t.candidates == 5));
        let stats = engine.stats();
        assert_eq!(stats.fallbacks, stats.tuples);
        assert_eq!(stats.nodes_visited, 0);
    }

    #[test]
    fn level_less_tree_is_exact_scan() {
        let model = Arc::new(model(3, 0.5));
        let engine = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch: 8, beam: 1 },
        ));
        assert_eq!(engine.depth(), 0);
        assert_eq!(engine.node_count(), 0);
        let mut tree = TreeClassifier::new(Arc::clone(&engine));
        let mut brute = Classifier::shared(Arc::clone(&model));
        for topic in 0..4 {
            let xml = doc(topic, 23);
            let a = tree.classify(&xml).expect("tree");
            let b = brute.classify_brute(&xml).expect("brute");
            assert_same(&a, &b, "k ≤ B");
        }
        assert_eq!(engine.stats().nodes_visited, 0);
    }

    #[test]
    fn config_is_clamped() {
        let engine = TreeEngine::build(Arc::new(model(4, 0.5)), TreeConfig { branch: 0, beam: 0 });
        assert_eq!(engine.config().branch, 2);
        assert_eq!(engine.config().beam, 1);
    }

    #[test]
    fn sessions_share_one_engine() {
        let model = Arc::new(model(5, 0.5));
        let engine = Arc::new(TreeEngine::build(Arc::clone(&model), TreeConfig::default()));
        let a = TreeClassifier::new(Arc::clone(&engine));
        let b = TreeClassifier::new(Arc::clone(&engine));
        assert!(std::ptr::eq(&**a.engine(), &**b.engine()));
        assert_eq!(a.trash_id(), 5);
        assert_eq!(b.k(), 5);
    }
}
