//! The bounded request queue between the acceptor's event loop and the
//! `ClassifyEngine` workers — the server's explicit backpressure point.
//!
//! The acceptor never blocks: [`BoundedQueue::try_push`] either hands a
//! parsed request to the worker pool or reports [`PushError::Full`], which
//! the connection layer turns into `503 Service Unavailable` +
//! `Retry-After` *immediately*, instead of accepting unbounded work and
//! falling over later. Workers block in [`BoundedQueue::pop`]; closing the
//! queue wakes them all so shutdown never hangs. The queue depth is
//! [`ServeOptions::queue_depth`](crate::ServeOptions::queue_depth), and
//! `GET /stats` reports both the configured depth and the live length.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum PushError<T> {
    /// The queue holds `capacity` items; shed the request with a 503.
    Full(T),
    /// The queue was closed (server shutting down).
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity MPMC queue: non-blocking producers, blocking
/// consumers, explicit close.
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signaled on push and on close.
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A panic while holding the lock cannot leave the queue inconsistent
    /// (the critical sections only move items), so poisoning is recovered.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item` unless the queue is full or closed. Never blocks —
    /// this is what makes the acceptor's backpressure response immediate.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (`Some`) or the queue is closed
    /// and drained (`None`) — the worker exit condition.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail, parked consumers wake, and
    /// already-queued items still drain.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Items currently waiting (the `queue_len` stats field).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// The configured depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn try_push_fills_to_capacity_then_sheds() {
        let queue = BoundedQueue::new(2);
        assert_eq!(queue.capacity(), 2);
        assert_eq!(queue.try_push(1), Ok(()));
        assert_eq!(queue.try_push(2), Ok(()));
        assert_eq!(queue.try_push(3), Err(PushError::Full(3)));
        assert_eq!(queue.len(), 2);
        // Popping frees a slot; pushes succeed again.
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.try_push(4), Ok(()));
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(4));
    }

    #[test]
    fn close_wakes_parked_consumers_and_drains_leftovers() {
        let queue = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.pop())
        };
        // Give the consumer time to park, then close without pushing.
        std::thread::sleep(Duration::from_millis(50));
        queue.close();
        assert_eq!(consumer.join().expect("consumer"), None);

        // Items queued before the close still drain; pushes after fail.
        let queue = BoundedQueue::new(4);
        queue.try_push(7).expect("push");
        queue.close();
        assert_eq!(queue.try_push(8), Err(PushError::Closed(8)));
        assert_eq!(queue.pop(), Some(7));
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn producers_and_consumers_agree_under_contention() {
        let queue = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = queue.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        let mut sent = 0u32;
        let mut shed = 0u32;
        for i in 0..1000u32 {
            match queue.try_push(i) {
                Ok(()) => sent += 1,
                Err(PushError::Full(_)) => {
                    shed += 1;
                    std::thread::yield_now();
                }
                Err(PushError::Closed(_)) => unreachable!("not closed yet"),
            }
        }
        queue.close();
        let received: usize = consumers
            .into_iter()
            .map(|c| c.join().expect("consumer").len())
            .sum();
        assert_eq!(received as u32, sent, "every accepted item is consumed");
        assert_eq!(sent + shed, 1000, "every push accounted for");
    }
}
