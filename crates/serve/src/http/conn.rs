//! Per-connection state machine for the event-driven transport: buffered
//! non-blocking reads and writes, an **incremental** HTTP/1.1 request
//! parser (a connection may deliver a request one byte per readiness
//! event, or several pipelined requests in one segment), and response
//! rendering.
//!
//! A [`Conn`] never blocks. The acceptor's readiness loop calls
//! [`Conn::fill`] when the socket is readable, [`Conn::parse_step`] to
//! lift complete requests out of the read buffer, and [`Conn::flush`]
//! when the socket is writable; everything in between is plain state.
//! Parse failures are *deferred errors* ([`Conn::parse_error`]): the
//! connection first drains every response owed for earlier pipelined
//! requests, then answers the error and closes, so responses always come
//! back in request order.
//!
//! Framing hygiene (carried over from the blocking transport and
//! extended): duplicate or non-digit `Content-Length` headers are
//! rejected outright, `Transfer-Encoding` is refused with `501` rather
//! than guessed at, a declared body larger than the configured cap
//! answers `413` **without allocating**, and a head that never terminates
//! inside the head budget answers `431` instead of buffering forever.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Most pipelined requests a connection may have parsed-but-unanswered;
/// past this the connection stops reading until responses drain, so one
/// client cannot turn the pipeline into an unbounded request buffer.
pub(crate) const MAX_PIPELINED: usize = 64;

/// Size caps the parser enforces per request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Limits {
    /// Request line + headers + terminator, in bytes (`431` past this).
    pub max_head: usize,
    /// Declared `Content-Length` ceiling (`413` past this).
    pub max_body: u64,
}

/// A rejected request: the status to answer with and a message for the
/// JSON error body. The connection closes after answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ParseError {
    pub status: u16,
    pub message: String,
}

impl ParseError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }
}

/// One parsed request, plus the connection disposition it asked for.
#[derive(Debug)]
pub(crate) struct Request {
    pub method: String,
    pub path: String,
    pub body: Vec<u8>,
    /// Close after answering: an explicit `Connection: close`, an
    /// HTTP/1.0 client without `keep-alive`, or keep-alive disabled
    /// server-side.
    pub close: bool,
}

/// Finds the end of the request head: `\n` followed by an optional `\r`
/// and a `\n` (both `\r\n\r\n` and bare `\n\n` terminate, matching the
/// tolerant line handling of the blocking parser this replaces). Returns
/// `(head_len, body_start)` where `head_len` covers the request line and
/// headers up to and including the first terminator newline.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some((i + 1, i + 2)),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some((i + 1, i + 3)),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Parses a `Content-Length` value strictly: ASCII digits only. This
/// rejects what `u64::from_str` would quietly accept (`+5`, for example)
/// — request-smuggling hygiene for a header that decides body framing.
pub(crate) fn parse_content_length(value: &str) -> Result<u64, ParseError> {
    let value = value.trim();
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(ParseError::bad_request("bad Content-Length"));
    }
    value
        .parse()
        .map_err(|_| ParseError::bad_request("bad Content-Length"))
}

/// Tries to lift one complete request off the front of `buf`.
///
/// * `Ok(None)` — the bytes so far are a valid prefix; read more.
/// * `Ok(Some((request, consumed)))` — a complete request occupying the
///   first `consumed` bytes (pipelined successors may follow).
/// * `Err(_)` — the prefix can never become a valid request within the
///   limits; answer the error status and close.
pub(crate) fn parse_request(
    buf: &[u8],
    limits: &Limits,
) -> Result<Option<(Request, usize)>, ParseError> {
    let Some((head_len, body_start)) = find_head_end(buf) else {
        // No terminator yet. If the head budget is already spent, no
        // amount of further reading can produce a valid head.
        if buf.len() > limits.max_head {
            return Err(ParseError {
                status: 431,
                message: format!("request head exceeds {} bytes", limits.max_head),
            });
        }
        return Ok(None);
    };
    if body_start > limits.max_head {
        return Err(ParseError {
            status: 431,
            message: format!("request head exceeds {} bytes", limits.max_head),
        });
    }

    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| ParseError::bad_request("request head is not UTF-8"))?;
    let mut lines = head.split('\n').map(|line| line.trim_end_matches('\r'));

    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if method.is_empty() || path.is_empty() {
        return Err(ParseError::bad_request("malformed request line"));
    }
    let http10 = version.starts_with("HTTP/1.0");

    let mut content_length: Option<u64> = None;
    let mut explicit_close = false;
    let mut explicit_keep_alive = false;
    for header in lines {
        if header.is_empty() {
            continue;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            // Two framing declarations in one request is classic request
            // smuggling; refuse rather than pick one.
            if content_length.is_some() {
                return Err(ParseError::bad_request("duplicate Content-Length header"));
            }
            content_length = Some(parse_content_length(value)?);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // The other half of the smuggling vector: never guess at a
            // framing scheme this server does not implement.
            return Err(ParseError {
                status: 501,
                message: "Transfer-Encoding is not supported (use Content-Length)".into(),
            });
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    explicit_close = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    explicit_keep_alive = true;
                }
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    // Checked against the *declared* length before any body byte is
    // buffered: a hostile `Content-Length: 99999999999` must cost nothing.
    if content_length > limits.max_body {
        return Err(ParseError {
            status: 413,
            message: format!("body exceeds {} bytes", limits.max_body),
        });
    }

    let total = body_start + content_length as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[body_start..total].to_vec();
    let close = explicit_close || (http10 && !explicit_keep_alive);
    Ok(Some((
        Request {
            method,
            path,
            body,
            close,
        },
        total,
    )))
}

/// The reason phrase for every status this server emits.
fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Renders a complete response. Every response is explicitly framed with
/// `Content-Length` and an explicit `Connection:` disposition, so both
/// keep-alive clients (which need the length to find the next response)
/// and `read_to_string`-until-EOF clients (which need the close) work.
pub(crate) fn render_response(
    status: u16,
    epoch: u64,
    body: &str,
    close: bool,
    retry_after: Option<u32>,
) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let retry = match retry_after {
        Some(seconds) => format!("Retry-After: {seconds}\r\n"),
        None => String::new(),
    };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nX-Model-Epoch: {epoch}\r\n{retry}Connection: {connection}\r\n\r\n{body}",
        reason = status_reason(status),
        len = body.len(),
    )
    .into_bytes()
}

/// One live connection owned by the acceptor's readiness loop.
pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Bytes read but not yet parsed into requests.
    read_buf: Vec<u8>,
    /// Rendered responses not yet fully written.
    write_buf: Vec<u8>,
    written: usize,
    /// Parsed requests not yet dispatched (the pipeline).
    pub pending: VecDeque<Request>,
    /// A request from this connection sits in the worker queue or on a
    /// worker; its response has not come back yet. At most one per
    /// connection, which is what keeps pipelined responses in order.
    pub in_flight: bool,
    /// Stop reading; once everything owed is flushed, drop the socket.
    pub close_after_flush: bool,
    /// The deferred parse failure, answered after earlier responses.
    pub parse_error: Option<ParseError>,
    /// The peer half-closed (EOF on read).
    pub peer_closed: bool,
    /// Requests parsed over the connection's lifetime (≥ 2 ⇒ reused).
    pub requests_parsed: u64,
    /// Guards completions against slab-slot reuse: a worker answer for a
    /// previous occupant of this slot carries a stale generation.
    pub generation: u64,
    /// Last byte moved in either direction (timeout bookkeeping).
    pub last_activity: Instant,
    /// The interest currently registered with the poller
    /// (`(readable, writable)`), or `None` while parked/unregistered.
    pub registered: Option<(bool, bool)>,
}

impl Conn {
    pub fn new(stream: TcpStream, generation: u64, now: Instant) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pending: VecDeque::new(),
            in_flight: false,
            close_after_flush: false,
            parse_error: None,
            peer_closed: false,
            requests_parsed: 0,
            generation,
            last_activity: now,
            registered: None,
        }
    }

    /// Reads until `WouldBlock`, EOF, or the buffer cap. The cap bounds
    /// how much one firehose client can buffer between parse steps; a
    /// legitimate request always fits under `max_head + max_body` plus
    /// pipeline slack, and anything beyond parses (or errors) next step.
    pub fn fill(&mut self, cap: usize, now: Instant) -> std::io::Result<()> {
        let mut scratch = [0u8; 16 * 1024];
        while self.read_buf.len() < cap {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&scratch[..n]);
                    self.last_activity = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Lifts every complete request in the read buffer into `pending`
    /// (up to the pipeline cap) and returns how many were parsed. A
    /// parse failure lands in `parse_error`, discards the unparseable
    /// tail, and stops the connection from reading further.
    pub fn parse_step(&mut self, limits: &Limits, force_close: bool) -> usize {
        if self.parse_error.is_some() {
            return 0;
        }
        let mut consumed = 0usize;
        let mut parsed = 0usize;
        while self.pending.len() < MAX_PIPELINED {
            match parse_request(&self.read_buf[consumed..], limits) {
                Ok(Some((mut request, used))) => {
                    consumed += used;
                    if force_close {
                        request.close = true;
                    }
                    let stop = request.close;
                    self.requests_parsed += 1;
                    parsed += 1;
                    self.pending.push_back(request);
                    if stop {
                        // Anything after a close request is undeliverable.
                        self.read_buf.clear();
                        consumed = 0;
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    self.parse_error = Some(e);
                    self.read_buf.clear();
                    consumed = 0;
                    break;
                }
            }
        }
        if consumed > 0 {
            self.read_buf.drain(..consumed);
        }
        parsed
    }

    /// Appends rendered response bytes for later (or immediate) flushing.
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Writes until done or `WouldBlock`; leftover bytes wait for the
    /// next writable event.
    pub fn flush(&mut self, now: Instant) -> std::io::Result<()> {
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.written += n;
                    self.last_activity = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        }
        Ok(())
    }

    /// Response bytes waiting for socket room.
    pub fn has_unsent(&self) -> bool {
        self.written < self.write_buf.len()
    }

    /// Undispatched bytes sit in the read buffer (a partial request, or
    /// pipelined successors the parser has not reached).
    pub fn has_buffered_input(&self) -> bool {
        !self.read_buf.is_empty()
    }

    /// The readiness interest this connection wants *right now*. Reading
    /// stops once the connection is closing, errored, or has a full
    /// pipeline; write interest exists only while bytes wait (registering
    /// `WRITABLE` on an idle socket would busy-spin a level-triggered
    /// poller). `(false, false)` parks the connection entirely — typical
    /// while its one in-flight request is on a worker — and the acceptor
    /// re-registers it when the completion lands.
    pub fn desired_interest(&self) -> (bool, bool) {
        let read = !self.peer_closed
            && !self.close_after_flush
            && self.parse_error.is_none()
            && self.pending.len() < MAX_PIPELINED;
        (read, self.has_unsent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits {
            max_head: 16 << 10,
            max_body: 64 << 20,
        }
    }

    fn parse_one(raw: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        parse_request(raw, &limits())
    }

    #[test]
    fn parses_a_plain_request_and_reports_consumed_bytes() {
        let raw = b"POST /classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let (req, consumed) = parse_one(raw).unwrap().expect("complete");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/classify");
        assert_eq!(req.body, b"hello");
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, raw.len());
        // Bare-\n line endings parse identically.
        let raw = b"GET /stats HTTP/1.1\n\n";
        let (req, consumed) = parse_one(raw).unwrap().expect("complete");
        assert_eq!(req.path, "/stats");
        assert_eq!(consumed, raw.len());
    }

    #[test]
    fn incremental_prefixes_ask_for_more_bytes() {
        let raw = b"POST /classify HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            assert!(
                parse_one(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        assert!(parse_one(raw).unwrap().is_some());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw: Vec<u8> = [
            &b"POST /classify HTTP/1.1\r\nContent-Length: 4\r\n\r\n<a/>"[..],
            &b"GET /stats HTTP/1.1\r\n\r\n"[..],
        ]
        .concat();
        let (first, consumed) = parse_one(&raw).unwrap().expect("first");
        assert_eq!(first.body, b"<a/>");
        let (second, rest) = parse_one(&raw[consumed..]).unwrap().expect("second");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/stats");
        assert_eq!(consumed + rest, raw.len());
    }

    #[test]
    fn connection_header_and_version_pick_the_disposition() {
        let close = b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(parse_one(close).unwrap().unwrap().0.close);
        let multi = b"GET /stats HTTP/1.1\r\nConnection: foo, Close\r\n\r\n";
        assert!(parse_one(multi).unwrap().unwrap().0.close, "token list");
        // HTTP/1.0 closes by default; its keep-alive opt-in is honored.
        let old = b"GET /stats HTTP/1.0\r\n\r\n";
        assert!(parse_one(old).unwrap().unwrap().0.close);
        let old_keep = b"GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(!parse_one(old_keep).unwrap().unwrap().0.close);
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Last-wins (or first-wins) on conflicting framing declarations is
        // the classic request-smuggling vector: refuse both orderings.
        for raw in [
            &b"POST /c HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello"[..],
            &b"POST /c HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\nhello"[..],
            // Even two *agreeing* declarations are refused outright.
            &b"POST /c HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello"[..],
        ] {
            let e = parse_one(raw).unwrap_err();
            assert_eq!(e.status, 400);
            assert!(e.message.contains("duplicate Content-Length"), "{e:?}");
        }
    }

    #[test]
    fn non_digit_content_length_is_rejected() {
        // `u64::from_str` accepts a leading `+`; the header grammar does
        // not. Anything but ASCII digits must 400.
        for bad in ["+5", "-5", "5 5", "0x5", "5.0", "", " + 5"] {
            let raw = format!("POST /c HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let e = parse_one(raw.as_bytes()).unwrap_err();
            assert_eq!(e.status, 400, "{bad:?}");
            assert!(e.message.contains("bad Content-Length"), "{bad:?}: {e:?}");
        }
        // Plain digits (with surrounding whitespace trimmed) still parse.
        assert_eq!(parse_content_length(" 5 ").unwrap(), 5);
        assert_eq!(parse_content_length("0").unwrap(), 0);
    }

    #[test]
    fn transfer_encoding_is_refused_not_guessed() {
        let raw = b"POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
        let e = parse_one(raw).unwrap_err();
        assert_eq!(e.status, 501);
        assert!(e.message.contains("Transfer-Encoding"));
    }

    #[test]
    fn huge_declared_body_is_413_before_any_allocation() {
        // The declared length alone triggers the rejection — the error
        // must fire from the head, long before 99 GB of body could ever
        // arrive (and without sizing a buffer to it).
        let raw = b"POST /c HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        let e = parse_one(raw).unwrap_err();
        assert_eq!(e.status, 413);
        assert!(e.message.contains("exceeds"), "{e:?}");
        // At exactly the cap the request is still admissible.
        let small = Limits {
            max_head: 1 << 10,
            max_body: 4,
        };
        let ok = b"POST /c HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd";
        assert!(parse_request(ok, &small).unwrap().is_some());
        let over = b"POST /c HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde";
        assert_eq!(parse_request(over, &small).unwrap_err().status, 413);
    }

    #[test]
    fn unterminated_head_past_the_budget_is_431() {
        let small = Limits {
            max_head: 64,
            max_body: 1 << 20,
        };
        // No terminator and over budget: hopeless, reject.
        let endless = vec![b'a'; 65];
        let e = parse_request(&endless, &small).unwrap_err();
        assert_eq!(e.status, 431);
        assert!(e.message.contains("exceeds"));
        // A terminated head that is itself over budget is equally 431.
        let mut big = b"GET /x HTTP/1.1\r\n".to_vec();
        big.extend_from_slice(b"X-Pad: ");
        big.extend(std::iter::repeat(b'p').take(64));
        big.extend_from_slice(b"\r\n\r\n");
        assert_eq!(parse_request(&big, &small).unwrap_err().status, 431);
        // Under budget with no terminator: keep reading.
        assert!(parse_request(&endless[..10], &small).unwrap().is_none());
    }

    #[test]
    fn malformed_request_line_is_400() {
        for raw in [&b"GARBAGE\r\n\r\n"[..], &b"\r\n\r\n"[..]] {
            let e = parse_one(raw).unwrap_err();
            assert_eq!(e.status, 400, "{raw:?}");
            assert!(e.message.contains("malformed request line"));
        }
    }

    #[test]
    fn render_response_frames_and_labels_every_reply() {
        let bytes = render_response(200, 7, r#"{"ok":true}"#, false, None);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("X-Model-Epoch: 7\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
        assert!(!text.contains("Retry-After"));

        let shed = render_response(503, 1, r#"{"error":"busy"}"#, true, Some(1));
        let text = String::from_utf8(shed).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }
}
