//! An event-driven HTTP/1.1 classification server with keep-alive,
//! pipelining, bounded backpressure and hot model reload.
//!
//! No external dependencies: a single **acceptor thread** runs a
//! readiness loop over an epoll-backed poller (the workspace's `mio`
//! stand-in), owning the non-blocking listener and every live
//! connection. Connections are plain state machines (`conn` module):
//! reads and writes are buffered and never block, partial requests
//! accumulate across readiness events, and several pipelined requests
//! may arrive in one segment — responses always return in request order.
//! Connections are **keep-alive by default** (HTTP/1.1 semantics;
//! `Connection: close` and HTTP/1.0 are honored per request).
//!
//! Engine-bound work (`POST /classify`, `POST /reload`) flows through a
//! **bounded queue** (`queue` module) to a fixed pool of worker threads;
//! when the queue is full the acceptor sheds the request *immediately*
//! with `503 Service Unavailable` + `Retry-After` instead of accepting
//! unbounded work. Read-only endpoints (`GET /model`, `GET /stats`)
//! answer inline from shared state, so diagnostics stay responsive even
//! while the queue is jammed. Each worker owns its **own**
//! [`ClassifyEngine`] so request handling is lock-free (the engine needs
//! `&mut self` because its session interners grow with unseen markup —
//! per the `classify` module docs that growth never changes scores). The
//! engine's layout is picked by [`ServeOptions::shards`]: replicated
//! (each worker carries a full private index — the default) or sharded
//! (the pool shares **one** immutable scatter/gather engine per model
//! epoch; see the `shard` module). Workers hand rendered responses back
//! to the acceptor over a channel paired with a poller [`Waker`].
//!
//! The model is *not* fixed for the server's lifetime: all workers share
//! a [`ModelSlot`] (see the `slot` module) and lazily rebuild their
//! classifier when they observe a newer epoch, so a freshly trained
//! `.cxkmodel` swaps in without dropping a single request — including
//! requests pipelined on connections that stay open across the swap.
//! Three surfaces drive it: `POST /reload`, an opt-in mtime poller
//! ([`ServeOptions::watch`]), and the [`Server::reload`] library API
//! that `cxk_stream`'s periodic retrain feeds directly.
//!
//! Endpoints (responses are JSON and every response carries the
//! answering worker's model epoch in an `X-Model-Epoch` header plus an
//! explicit `Connection:` disposition and `Content-Length` framing):
//!
//! * `POST /classify` — body: one XML document, **or** a JSON array of
//!   XML document strings (batch classification, amortizing parse
//!   overhead for bulk scoring). A single document answers `200` with
//!   its cluster, score and per-tuple assignments (`400` on malformed
//!   XML); a batch answers `200` with a JSON array holding one
//!   assignment object — or a per-document `{"error": …}` object — per
//!   input, in order. A whole request is answered against one epoch,
//!   never a mix.
//! * `POST /reload` — body: the path to a `.cxkmodel` snapshot, or empty
//!   to re-read the path the server was started from. The snapshot's
//!   magic, format version and checksum are validated *before* the swap;
//!   an incompatible or corrupt snapshot answers `409 Conflict` and the
//!   live model is untouched. Success answers `200` with the new epoch.
//! * `GET /model` — model metadata (epoch, k, parameters, sizes).
//! * `GET /stats` — server counters (connections, requests,
//!   classifications, errors, reloads, shed requests, reused
//!   connections, queue depth/length, trash rate) and index diagnostics;
//!   in sharded mode also the engine layout and per-shard statistics.
//!
//! The protocol subset is deliberately tiny: request line + headers,
//! `Content-Length` bodies only. Framing hygiene is strict — duplicate
//! or non-digit `Content-Length` headers are rejected outright and
//! `Transfer-Encoding` answers `501` rather than being guessed at
//! (request-smuggling hygiene); a declared body over
//! [`ServeOptions::max_body_bytes`] answers `413` without allocating,
//! and a head that never terminates within
//! [`ServeOptions::max_head_bytes`] answers `431` instead of buffering
//! forever. See `ARCHITECTURE.md` § "Async serving core" for the
//! connection state machine and the backpressure contract.
//!
//! **Trust boundary:** the server has no authentication, and
//! `POST /reload` in particular reads a server-side filesystem path named
//! by the client (the error text reveals whether that path was readable).
//! Expose it only to trusted clients — the CLI binds `127.0.0.1`
//! exclusively; a [`Server::start`] on a wider address must sit behind a
//! trusted network or proxy.

mod acceptor;
mod conn;
mod queue;

use crate::classify::{ClassifyEngine, ClassifyError, DocumentAssignment};
use crate::remote::RemoteEngine;
use crate::slot::{EpochModel, ModelSlot};
use conn::{Limits, Request};
use cxk_core::{
    load_model, peek_format_version, snapshot_digest, TrainedModel, MODEL_FORMAT_VERSION,
};
use cxk_p2p::NetworkError;
use cxk_util::LogHistogram;
use mio::{Interest, Poll, Waker};
use queue::BoundedQueue;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the file watcher wakes to check the shutdown flag; the
/// configured watch interval is quantized to multiples of this.
const WATCH_TICK: Duration = Duration::from_millis(50);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (each with its own classifier). Clamped to ≥ 1.
    pub threads: usize,
    /// Score every representative instead of consulting the index
    /// (diagnostics / benchmarking the index's benefit).
    pub brute_force: bool,
    /// Stall budget per connection: a request head or body that stops
    /// arriving for this long answers `408` and closes; a peer that
    /// stops reading its responses for this long is dropped. (With the
    /// event-driven transport a slow client pins a buffer, never a
    /// thread — this bounds the buffer's lifetime.)
    pub io_timeout: Duration,
    /// Partition the representatives across this many shards and share
    /// **one** immutable scatter/gather engine per model epoch across the
    /// whole worker pool (`cxk serve --shards <n>`). `None` (the default)
    /// replicates a full index into every worker instead. Sharded
    /// assignment is bit-identical to replicated and brute-force
    /// assignment — see the `shard` module docs.
    pub shards: Option<usize>,
    /// Scatter queries to shard daemons in other processes instead of
    /// scoring anything locally (`cxk serve --remote-shards a1,a2,...`).
    /// `remote_shards[i]` is shard slot `i`'s replica set, in ascending
    /// representative-range order; each replica is a `host:port` of a
    /// `cxk shard-serve` daemon holding the same model snapshot. Takes
    /// precedence over `shards`. Remote assignment is bit-identical to
    /// every local strategy — see the `remote` module docs.
    pub remote_shards: Vec<Vec<String>>,
    /// Per-shard scatter deadline before failing over to the next
    /// replica (`cxk serve --remote-deadline-ms <n>`).
    pub remote_deadline: Duration,
    /// Serve through a hierarchical representative tree (`cxk serve
    /// --tree --branch <B> --beam <W>`): one shared [`crate::TreeEngine`]
    /// per epoch, assignment descends by `simγJ` under the beam and
    /// exactly re-ranks the reached leaves. The only approximate layout
    /// (exact at full beam); `remote_shards` and `shards` take
    /// precedence. See the `tree` module docs.
    pub tree: Option<crate::tree::TreeConfig>,
    /// The snapshot path behind the model, if it came from disk: the
    /// default `POST /reload` target and the file the watcher polls.
    pub model_path: Option<PathBuf>,
    /// Poll `model_path` at this interval and hot-swap the snapshot when
    /// its mtime (and content digest) change. Requires `model_path`.
    pub watch: Option<Duration>,
    /// Depth of the bounded request queue between the acceptor and the
    /// worker pool (`cxk serve --queue-depth <n>`). When the queue is
    /// full, further classify/reload requests are shed with
    /// `503` + `Retry-After: 1` instead of queuing without bound.
    /// Clamped to ≥ 1.
    pub queue_depth: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before the server closes it (`cxk serve --keep-alive <secs>`).
    /// `None` disables keep-alive entirely: every response closes its
    /// connection, and idle sockets are reaped after `io_timeout`.
    pub keep_alive: Option<Duration>,
    /// Upper bound on a request's declared `Content-Length`; a larger
    /// declaration answers `413` without allocating anything.
    pub max_body_bytes: u64,
    /// Upper bound on the request line plus all headers; a head that
    /// has not terminated within this budget answers `431`.
    pub max_head_bytes: usize,
    /// Test-only knob: stall every worker this long per request, making
    /// the bounded queue observably fill under a driven load. Not a
    /// serving feature.
    #[doc(hidden)]
    pub worker_delay: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 4,
            brute_force: false,
            io_timeout: Duration::from_secs(10),
            shards: None,
            remote_shards: Vec::new(),
            remote_deadline: Duration::from_secs(2),
            tree: None,
            model_path: None,
            watch: None,
            queue_depth: 256,
            keep_alive: Some(Duration::from_secs(30)),
            max_body_bytes: 64 << 20,
            max_head_bytes: 16 << 10,
            worker_delay: None,
        }
    }
}

/// Monotonic server counters, shared by the acceptor and all workers.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (a keep-alive connection counts once no
    /// matter how many requests it carries).
    pub connections: AtomicU64,
    /// HTTP requests successfully parsed (head + body). Malformed or
    /// timed-out connections count in `connections` and `errors` only.
    pub requests: AtomicU64,
    /// Successful classifications.
    pub classified: AtomicU64,
    /// Classifications that landed in the trash cluster.
    pub trash: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Successful model swaps (any surface: endpoint, watcher, library).
    pub reloads: AtomicU64,
    /// Rejected swap attempts (unreadable, corrupt or incompatible
    /// snapshots); the live model was untouched.
    pub reload_errors: AtomicU64,
    /// Requests shed with `503` because the bounded queue was full
    /// (also counted in `errors`).
    pub rejected: AtomicU64,
    /// Connections that served a second request — keep-alive reuse
    /// actually happening, not just being offered.
    pub reused: AtomicU64,
    /// Posting-list entries in the index the workers currently serve
    /// from (refreshed on every engine rebuild), mirrored here so
    /// `GET /stats` can answer without borrowing a worker's engine.
    pub index_postings: AtomicU64,
    /// Successful classifications whose tree-tuple enumeration hit
    /// `TupleLimits::max_tuples_per_tree` — the answer was computed on a
    /// truncated tuple set (also flagged per response as `"capped"`).
    pub capped: AtomicU64,
    /// Service time of every engine-bound request (classify and reload),
    /// in microseconds from dequeue to rendered response — queue wait
    /// excluded, so open-loop client latency minus this is scheduling
    /// plus transport. Drives the `service_p*_micros` fields of
    /// `GET /stats`.
    pub service_hist: LogHistogram,
}

/// A point-in-time copy of the counters plus the live model epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// HTTP requests successfully parsed.
    pub requests: u64,
    /// Successful classifications.
    pub classified: u64,
    /// Classifications that landed in the trash cluster.
    pub trash: u64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: u64,
    /// Successful model swaps.
    pub reloads: u64,
    /// Rejected swap attempts.
    pub reload_errors: u64,
    /// Requests shed with `503` by the bounded queue.
    pub rejected: u64,
    /// Connections that served a second request (keep-alive reuse).
    pub reused: u64,
    /// Classifications answered from a truncated (capped) tuple set.
    pub capped: u64,
    /// Median service time of engine-bound requests, in microseconds.
    pub service_p50_micros: u64,
    /// 99th-percentile service time, in microseconds.
    pub service_p99_micros: u64,
    /// 99.9th-percentile service time, in microseconds.
    pub service_p999_micros: u64,
    /// The live model epoch (1 = the boot model).
    pub epoch: u64,
}

/// One engine-bound request traveling the bounded queue.
pub(crate) struct Job {
    /// The connection's slab index in the acceptor.
    pub token: usize,
    /// Slot-reuse guard: must match the connection's generation for the
    /// completion to be delivered.
    pub generation: u64,
    pub request: Request,
}

/// A rendered response traveling back from a worker.
pub(crate) struct Completion {
    pub token: usize,
    pub generation: u64,
    pub bytes: Vec<u8>,
    /// Close the connection after flushing (the request asked to).
    pub close: bool,
}

/// A running classification server.
pub struct Server {
    addr: SocketAddr,
    slot: Arc<ModelSlot>,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    waker: Arc<Waker>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

/// Everything a worker needs besides its own classifier.
struct WorkerCtx {
    slot: Arc<ModelSlot>,
    stats: Arc<ServerStats>,
    brute: bool,
    model_path: Option<PathBuf>,
    /// The shared remote topology; workers classify through shard
    /// daemons when set.
    remote: Option<Arc<RemoteEngine>>,
}

impl Server {
    /// Binds `addr` (e.g. `("127.0.0.1", 0)` for an ephemeral port) and
    /// starts the acceptor's readiness loop plus `opts.threads` workers;
    /// `model` becomes epoch 1. With `opts.watch` (and a `model_path`) a
    /// poller thread hot-swaps the snapshot whenever the file changes on
    /// disk.
    ///
    /// # Errors
    /// Returns the bind error, or the poller setup error.
    pub fn start(
        model: TrainedModel,
        addr: impl ToSocketAddrs,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        // Remote serving scores nothing locally, so a remote topology
        // suppresses the in-process shard engine a `shards` setting would
        // otherwise build on every epoch.
        let remote = if opts.remote_shards.is_empty() {
            None
        } else {
            Some(Arc::new(RemoteEngine::new(
                opts.remote_shards.clone(),
                opts.remote_deadline,
            )))
        };
        let shards = if remote.is_some() { None } else { opts.shards };
        // The tree is likewise mutually exclusive with both shard layouts
        // (the CLI rejects the combinations; embedders get precedence).
        let tree = if remote.is_some() || shards.is_some() {
            None
        } else {
            opts.tree
        };
        let slot = Arc::new(ModelSlot::with_layout(model, shards, tree));
        let threads = opts.threads.max(1);

        let poll = Poll::new()?;
        poll.registry()
            .register(&listener, acceptor::LISTENER, Interest::READABLE)?;
        let waker = Arc::new(Waker::new(poll.registry(), acceptor::WAKER)?);

        let queue = Arc::new(BoundedQueue::<Job>::new(opts.queue_depth));
        let (completion_tx, completion_rx) = crossbeam_channel::unbounded::<Completion>();

        // Seed the index-size mirror before any request can land, so an
        // immediate `GET /stats` never reads a zero. (Workers refresh it
        // on every engine rebuild.)
        {
            let current = slot.current();
            let engine = engine_for(&current, remote.as_ref());
            stats
                .index_postings
                .store(engine.posting_entries() as u64, Ordering::Relaxed);
        }

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let ctx = WorkerCtx {
                slot: Arc::clone(&slot),
                stats: Arc::clone(&stats),
                brute: opts.brute_force,
                model_path: opts.model_path.clone(),
                remote: remote.clone(),
            };
            let queue = Arc::clone(&queue);
            let tx = completion_tx.clone();
            let waker = Arc::clone(&waker);
            let delay = opts.worker_delay;
            workers.push(std::thread::spawn(move || {
                worker_loop(ctx, &queue, &tx, &waker, delay)
            }));
        }
        drop(completion_tx);

        let acceptor = {
            let ctx = acceptor::Acceptor {
                listener,
                poll,
                completions: completion_rx,
                queue: Arc::clone(&queue),
                slot: Arc::clone(&slot),
                stats: Arc::clone(&stats),
                shutdown: Arc::clone(&shutdown),
                limits: Limits {
                    max_head: opts.max_head_bytes,
                    max_body: opts.max_body_bytes,
                },
                force_close: opts.keep_alive.is_none(),
                idle_horizon: opts.keep_alive.unwrap_or(opts.io_timeout),
                io_timeout: opts.io_timeout.max(Duration::from_millis(1)),
                brute: opts.brute_force,
                remote: remote.clone(),
            };
            std::thread::spawn(move || acceptor::run(ctx))
        };

        let watcher = match (opts.watch, &opts.model_path) {
            (Some(interval), Some(path)) => Some(spawn_watcher(
                Arc::clone(&slot),
                Arc::clone(&stats),
                Arc::clone(&shutdown),
                path.clone(),
                interval,
            )),
            _ => None,
        };

        Ok(Server {
            addr,
            slot,
            shutdown,
            stats,
            waker,
            acceptor: Some(acceptor),
            workers,
            watcher,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live model epoch (1 = the model the server started with).
    pub fn epoch(&self) -> u64 {
        self.slot.epoch()
    }

    /// Atomically swaps `model` into the running worker pool and returns
    /// the new epoch — the library surface of hot reload, built for
    /// `cxk_stream`-style periodic retrains
    /// (`Engine::fit → FitOutcome::into_model → Server::reload`). In-flight
    /// requests finish on the previous model; each worker picks the new
    /// one up before its next request.
    pub fn reload(&self, model: TrainedModel) -> u64 {
        let epoch = self.slot.swap(model);
        self.stats.reloads.fetch_add(1, Ordering::Relaxed);
        epoch
    }

    /// A snapshot of the counters and the live epoch.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            classified: self.stats.classified.load(Ordering::Relaxed),
            trash: self.stats.trash.load(Ordering::Relaxed),
            errors: self.stats.errors.load(Ordering::Relaxed),
            reloads: self.stats.reloads.load(Ordering::Relaxed),
            reload_errors: self.stats.reload_errors.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            reused: self.stats.reused.load(Ordering::Relaxed),
            capped: self.stats.capped.load(Ordering::Relaxed),
            service_p50_micros: self.stats.service_hist.percentile(0.5),
            service_p99_micros: self.stats.service_hist.percentile(0.99),
            service_p999_micros: self.stats.service_hist.percentile(0.999),
            epoch: self.slot.epoch(),
        }
    }

    /// Blocks until the server shuts down (for a foreground `cxk serve`).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Stops accepting, drains in-flight work and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        // The acceptor closes the queue on exit; workers drain whatever
        // is already queued and stop. The watcher polls the flag.
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort: a dropped (not shut down) server stops accepting.
        // (The watcher polls the same flag and exits within a tick.)
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.waker.wake();
    }
}

/// One worker's classify engine for a published epoch: a remote fan-out
/// session when the server has a shard-daemon topology, a lightweight
/// session over the epoch's shared shard set, or a private full-index
/// classifier when the slot runs replicated.
fn engine_for(epoch: &EpochModel, remote: Option<&Arc<RemoteEngine>>) -> ClassifyEngine {
    ClassifyEngine::for_epoch(
        &epoch.model,
        epoch.sharded.as_ref(),
        remote,
        epoch.tree.as_ref(),
    )
}

/// A worker: pull jobs from the bounded queue, keep the engine on the
/// live epoch, render complete responses and hand them back to the
/// acceptor (channel + waker). Exits when the queue closes.
fn worker_loop(
    ctx: WorkerCtx,
    queue: &BoundedQueue<Job>,
    completions: &crossbeam_channel::Sender<Completion>,
    waker: &Waker,
    delay: Option<Duration>,
) {
    let mut current = ctx.slot.current();
    let mut engine = engine_for(&current, ctx.remote.as_ref());
    while let Some(job) = queue.pop() {
        // Hot reload: observe a newer epoch *between* requests, so
        // in-flight work always finishes on the model it started with
        // and no lock is held while classifying. In sharded mode the
        // rebuild is a cheap session — the postings were built once, at
        // swap time.
        if ctx.slot.epoch() != current.epoch {
            current = ctx.slot.current();
            engine = engine_for(&current, ctx.remote.as_ref());
            ctx.stats
                .index_postings
                .store(engine.posting_entries() as u64, Ordering::Relaxed);
        }
        if let Some(delay) = delay {
            std::thread::sleep(delay);
        }
        let started = Instant::now();
        let (status, epoch, body) = handle_request(&job.request, &mut engine, current.epoch, &ctx);
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        ctx.stats.service_hist.record(micros);
        let bytes = conn::render_response(status, epoch, &body, job.request.close, None);
        let delivered = completions
            .send(Completion {
                token: job.token,
                generation: job.generation,
                bytes,
                close: job.request.close,
            })
            .is_ok();
        if !delivered {
            // The acceptor is gone; the queue is closing underneath us.
            break;
        }
        let _ = waker.wake();
    }
}

/// HTTP status for a classify failure: the client's document is at fault
/// (`400`), or the serving fabric is — a remote shard's whole replica set
/// timed out (`504`) or failed some other way (`502`).
fn classify_error_status(e: &ClassifyError) -> u16 {
    match e {
        ClassifyError::Xml(_) => 400,
        ClassifyError::Network(NetworkError::Timeout) => 504,
        ClassifyError::Network(_) | ClassifyError::Remote(_) => 502,
    }
}

/// Answers one engine-bound request. Returns `(status, epoch-for-header,
/// body)` — reload success reports the *new* epoch it just installed.
fn handle_request(
    request: &Request,
    engine: &mut ClassifyEngine,
    epoch: u64,
    ctx: &WorkerCtx,
) -> (u16, u64, String) {
    let stats = &*ctx.stats;
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/classify") => {
            let Ok(body) = std::str::from_utf8(&request.body) else {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return (400, epoch, r#"{"error":"body is not UTF-8"}"#.to_string());
            };
            // A leading `[` cannot start well-formed XML, so it reliably
            // selects the batch form: a JSON array of XML document strings.
            if body.trim_start().starts_with('[') {
                let docs = match parse_json_string_array(body) {
                    Ok(docs) => docs,
                    Err(message) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
                        return (400, epoch, body);
                    }
                };
                let entries: Vec<String> = docs
                    .iter()
                    .map(|xml| {
                        let result = if ctx.brute {
                            engine.classify_brute(xml)
                        } else {
                            engine.classify(xml)
                        };
                        match result {
                            Ok(report) => {
                                stats.classified.fetch_add(1, Ordering::Relaxed);
                                if report.cluster == engine.trash_id() {
                                    stats.trash.fetch_add(1, Ordering::Relaxed);
                                }
                                if report.capped {
                                    stats.capped.fetch_add(1, Ordering::Relaxed);
                                }
                                assignment_json(&report, engine.trash_id())
                            }
                            Err(e) => {
                                stats.errors.fetch_add(1, Ordering::Relaxed);
                                format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()))
                            }
                        }
                    })
                    .collect();
                return (200, epoch, format!("[{}]", entries.join(",")));
            }
            let result = if ctx.brute {
                engine.classify_brute(body)
            } else {
                engine.classify(body)
            };
            match result {
                Ok(report) => {
                    stats.classified.fetch_add(1, Ordering::Relaxed);
                    if report.cluster == engine.trash_id() {
                        stats.trash.fetch_add(1, Ordering::Relaxed);
                    }
                    if report.capped {
                        stats.capped.fetch_add(1, Ordering::Relaxed);
                    }
                    (200, epoch, assignment_json(&report, engine.trash_id()))
                }
                Err(e) => {
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let body = format!(r#"{{"error":"{}"}}"#, json_escape(&e.to_string()));
                    (classify_error_status(&e), epoch, body)
                }
            }
        }
        ("POST", "/reload") => {
            let Ok(target) = std::str::from_utf8(&request.body) else {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return (
                    400,
                    epoch,
                    r#"{"error":"body is not UTF-8 (expected a snapshot path, or empty)"}"#
                        .to_string(),
                );
            };
            let target = target.trim();
            let path = if target.is_empty() {
                ctx.model_path.clone()
            } else {
                Some(PathBuf::from(target))
            };
            let Some(path) = path else {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                return (
                    400,
                    epoch,
                    r#"{"error":"no snapshot path: the server was started from an in-memory model; POST the path to a .cxkmodel in the body"}"#.to_string(),
                );
            };
            match load_snapshot(&path) {
                Ok(model) => {
                    let new_epoch = ctx.slot.swap(model);
                    stats.reloads.fetch_add(1, Ordering::Relaxed);
                    let body = format!(
                        r#"{{"reloaded":true,"epoch":{new_epoch},"path":"{}"}}"#,
                        json_escape(&path.display().to_string())
                    );
                    (200, new_epoch, body)
                }
                Err(message) => {
                    // The snapshot failed validation (or could not be
                    // read): conflict with the live model, which stays.
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    stats.errors.fetch_add(1, Ordering::Relaxed);
                    let body = format!(r#"{{"error":"{}"}}"#, json_escape(&message));
                    (409, epoch, body)
                }
            }
        }
        // The acceptor answers GETs and unknown routes inline; reaching
        // here would be a routing bug, but answer validly regardless.
        _ => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            (
                404,
                epoch,
                r#"{"error":"no such endpoint (POST /classify, POST /reload, GET /model, GET /stats)"}"#.to_string(),
            )
        }
    }
}

/// Validates `bytes` as a snapshot and decodes it. The magic, format
/// version and checksum are all verified (plus the internal id
/// consistency `load_model` enforces) *before* any swap, so a bad
/// snapshot can never disturb the live model. `path` only labels errors.
fn load_snapshot_bytes(bytes: &[u8], path: &Path) -> Result<TrainedModel, String> {
    match peek_format_version(bytes) {
        Some(MODEL_FORMAT_VERSION) => {}
        Some(version) => {
            return Err(format!(
                "{}: incompatible snapshot format version {version} (this server speaks {MODEL_FORMAT_VERSION})",
                path.display()
            ))
        }
        None => return Err(format!("{}: not a .cxkmodel snapshot", path.display())),
    }
    load_model(bytes).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads, validates and decodes the snapshot at `path`.
fn load_snapshot(path: &Path) -> Result<TrainedModel, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    load_snapshot_bytes(&bytes, path)
}

/// The opt-in mtime poller: every `interval`, stat `path`; when the mtime
/// moves *and* the trailing content digest actually differs, validate and
/// swap the snapshot in. Rejected snapshots are counted and logged to
/// stderr; the live model is untouched, and — because `last_mtime` is
/// only committed on a skip or a successful swap — the file is re-tried
/// every interval until a valid snapshot appears. That is what makes a
/// *torn read* of a non-atomic overwrite safe even on filesystems with
/// coarse mtime granularity: the half-written bytes fail the checksum,
/// nothing is committed, and the completed write is picked up on a later
/// poll whether or not it lands in the same timestamp unit.
fn spawn_watcher(
    slot: Arc<ModelSlot>,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    path: PathBuf,
    interval: Duration,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let modified = |path: &Path| std::fs::metadata(path).and_then(|m| m.modified()).ok();
        let mut last_mtime = modified(&path);
        // The boot model came from this path moments ago; its digest is
        // read once so an immediate identical rewrite is not re-loaded.
        let mut last_digest = std::fs::read(&path)
            .ok()
            .as_deref()
            .and_then(snapshot_digest);
        let mut waited = Duration::ZERO;
        while !shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(WATCH_TICK);
            waited += WATCH_TICK;
            if waited < interval {
                continue;
            }
            waited = Duration::ZERO;
            let mtime = modified(&path);
            if mtime == last_mtime {
                continue;
            }
            let bytes = match std::fs::read(&path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    // Transient (mid-rename, NFS hiccup): retry next poll.
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("cxk: watch: cannot read {}: {e}", path.display());
                    continue;
                }
            };
            // A touch that did not change the contents (same trailing
            // digest) is not a new model; skip the swap and the rebuilds
            // it would trigger in every worker.
            let digest = snapshot_digest(&bytes);
            if digest.is_some() && digest == last_digest {
                last_mtime = mtime;
                continue;
            }
            // Validate the very bytes that were read — one read per poll,
            // and the digest recorded below always describes the model
            // that actually went live.
            match load_snapshot_bytes(&bytes, &path) {
                Ok(model) => {
                    let epoch = slot.swap(model);
                    stats.reloads.fetch_add(1, Ordering::Relaxed);
                    last_mtime = mtime;
                    last_digest = digest;
                    eprintln!("cxk: watch: reloaded {} as epoch {epoch}", path.display());
                }
                Err(message) => {
                    stats.reload_errors.fetch_add(1, Ordering::Relaxed);
                    eprintln!("cxk: watch: keeping the live model: {message}");
                }
            }
        }
    })
}

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters). Shared with the CLI's `--jsonl`
/// output so every JSON the workspace emits escapes identically.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a JSON array of strings — the batch `POST /classify` body — with
/// a dependency-free cursor. Accepts exactly `[ "s1", "s2", … ]` with the
/// standard string escapes (`\" \\ \/ \b \f \n \r \t \uXXXX`, including
/// surrogate pairs); anything else is an error naming the byte offset.
fn parse_json_string_array(body: &str) -> Result<Vec<String>, String> {
    let bytes = body.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    skip_ws(&mut pos);
    if pos >= bytes.len() || bytes[pos] != b'[' {
        return Err(format!("batch body must be a JSON array (byte {pos})"));
    }
    pos += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut pos);
        if pos < bytes.len() && bytes[pos] == b']' && out.is_empty() {
            pos += 1;
            break;
        }
        let (text, next) = parse_json_string(body, pos)?;
        out.push(text);
        pos = next;
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b']') => {
                pos += 1;
                break;
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
    skip_ws(&mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content after the array (byte {pos})"));
    }
    Ok(out)
}

/// Parses one JSON string literal starting at `pos`; returns the decoded
/// text and the byte offset past the closing quote.
fn parse_json_string(body: &str, mut pos: usize) -> Result<(String, usize), String> {
    let bytes = body.as_bytes();
    if bytes.get(pos) != Some(&b'"') {
        return Err(format!("expected a JSON string at byte {pos}"));
    }
    pos += 1;
    let mut out = String::new();
    let mut chars = body[pos..].char_indices();
    let mut pending_high: Option<u16> = None;
    while let Some((offset, c)) = chars.next() {
        let flush_surrogate = |pending: &mut Option<u16>, out: &mut String| {
            if pending.take().is_some() {
                out.push(char::REPLACEMENT_CHARACTER);
            }
        };
        match c {
            '"' => {
                flush_surrogate(&mut pending_high, &mut out);
                return Ok((out, pos + offset + 1));
            }
            '\\' => {
                let Some((esc_offset, esc)) = chars.next() else {
                    return Err("unterminated escape".into());
                };
                let simple = match esc {
                    '"' => Some('"'),
                    '\\' => Some('\\'),
                    '/' => Some('/'),
                    'b' => Some('\u{8}'),
                    'f' => Some('\u{c}'),
                    'n' => Some('\n'),
                    'r' => Some('\r'),
                    't' => Some('\t'),
                    'u' => None,
                    other => {
                        return Err(format!(
                            "unknown escape `\\{other}` at byte {}",
                            pos + esc_offset
                        ))
                    }
                };
                if let Some(ch) = simple {
                    flush_surrogate(&mut pending_high, &mut out);
                    out.push(ch);
                    continue;
                }
                let mut code = 0u16;
                for _ in 0..4 {
                    let Some((_, h)) = chars.next() else {
                        return Err("truncated \\u escape".into());
                    };
                    let digit = h
                        .to_digit(16)
                        .ok_or_else(|| format!("bad \\u digit `{h}`"))?;
                    code = (code << 4) | digit as u16;
                }
                match (pending_high, code) {
                    (Some(high), 0xDC00..=0xDFFF) => {
                        let combined = 0x10000
                            + ((u32::from(high) - 0xD800) << 10)
                            + (u32::from(code) - 0xDC00);
                        out.push(char::from_u32(combined).unwrap_or(char::REPLACEMENT_CHARACTER));
                        pending_high = None;
                    }
                    (_, 0xD800..=0xDBFF) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        pending_high = Some(code);
                    }
                    (_, _) => {
                        flush_surrogate(&mut pending_high, &mut out);
                        out.push(
                            char::from_u32(u32::from(code)).unwrap_or(char::REPLACEMENT_CHARACTER),
                        );
                    }
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(format!(
                    "unescaped control character at byte {}",
                    pos + offset
                ));
            }
            c => {
                flush_surrogate(&mut pending_high, &mut out);
                out.push(c);
            }
        }
    }
    Err("unterminated JSON string".into())
}

/// Renders a [`DocumentAssignment`] as the canonical JSON object the
/// server answers with (`cluster`, `trash`, `score`, `tuples: [...]`).
/// Shared with the CLI's `--jsonl` output so both surfaces speak one
/// format.
pub fn assignment_json(report: &DocumentAssignment, trash_id: u32) -> String {
    let tuples: Vec<String> = report
        .tuples
        .iter()
        .map(|t| {
            format!(
                r#"{{"cluster":{},"trash":{},"similarity":{},"candidates":{}}}"#,
                t.cluster,
                t.cluster == trash_id,
                t.similarity,
                t.candidates
            )
        })
        .collect();
    format!(
        r#"{{"cluster":{},"trash":{},"capped":{},"score":{},"tuples":[{}]}}"#,
        report.cluster,
        report.cluster == trash_id,
        report.capped,
        report.score,
        tuples.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::TupleAssignment;

    #[test]
    fn json_escaping_handles_hostile_strings() {
        assert_eq!(json_escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(json_escape("line\nbreak\ttab\\"), r"line\nbreak\ttab\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn json_string_array_parses_the_batch_body() {
        assert_eq!(
            parse_json_string_array(r#"["<a/>", "<b/>"]"#).unwrap(),
            vec!["<a/>".to_string(), "<b/>".to_string()]
        );
        assert_eq!(parse_json_string_array("[]").unwrap(), Vec::<String>::new());
        assert_eq!(
            parse_json_string_array(r#"  [ "x" ]  "#).unwrap(),
            vec!["x".to_string()]
        );
        // Escapes, including \uXXXX and a surrogate pair.
        assert_eq!(
            parse_json_string_array(r#"["a\"b\\c\n\té😀"]"#).unwrap(),
            vec!["a\"b\\c\n\t\u{e9}\u{1F600}".to_string()]
        );
        assert_eq!(
            parse_json_string_array(r#"["\u00e9 \ud83d\ude00"]"#).unwrap(),
            vec!["\u{e9} \u{1F600}".to_string()]
        );
    }

    #[test]
    fn json_string_array_rejects_malformed_bodies() {
        for bad in [
            "",
            "[",
            "[1, 2]",
            r#"["a""#,
            r#"["a",]"#,
            r#"["a"] trailing"#,
            r#"["bad \q escape"]"#,
            "\"not an array\"",
        ] {
            assert!(
                parse_json_string_array(bad).is_err(),
                "must reject: {bad:?}"
            );
        }
        // A lone surrogate decodes to the replacement character rather
        // than corrupting the string.
        let lone = parse_json_string_array(r#"["\ud83dx"]"#).unwrap();
        assert_eq!(lone, vec!["\u{FFFD}x".to_string()]);
    }

    #[test]
    fn assignment_json_shape() {
        let report = DocumentAssignment {
            cluster: 1,
            score: 0.5,
            tuples: vec![TupleAssignment {
                cluster: 1,
                similarity: 0.5,
                candidates: 2,
            }],
            capped: false,
        };
        let json = assignment_json(&report, 4);
        assert_eq!(
            json,
            r#"{"cluster":1,"trash":false,"capped":false,"score":0.5,"tuples":[{"cluster":1,"trash":false,"similarity":0.5,"candidates":2}]}"#
        );
        let trash = DocumentAssignment {
            cluster: 4,
            score: 0.0,
            tuples: Vec::new(),
            capped: true,
        };
        let trash_json = assignment_json(&trash, 4);
        assert!(trash_json.contains(r#""trash":true"#));
        assert!(trash_json.contains(r#""capped":true"#));
    }
}
