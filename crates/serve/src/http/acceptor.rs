//! The readiness loop: one thread owning the non-blocking listener and
//! every live [`Conn`], driven by the `mio` poller.
//!
//! Responsibilities, in the order each loop iteration performs them:
//!
//! 1. **Poll** for readiness (or the tick timeout, for sweeps).
//! 2. **Drain completions** — rendered responses the workers posted via
//!    the channel + [`Waker`] pair — into their connections' write
//!    buffers, guarded by the slot generation so a response for a
//!    previous occupant of a reused slab slot is discarded.
//! 3. **Handle events**: accept until `WouldBlock`, fill/parse/flush
//!    ready connections, and dispatch parsed requests — `GET` endpoints
//!    inline (they read shared state only, so `/stats` answers even
//!    while the worker queue is jammed), classify/reload through the
//!    bounded queue, shedding with `503 Retry-After` when it is full.
//! 4. **Sweep timeouts**: stalled mid-request reads answer `408`,
//!    stalled writes are dropped, idle keep-alive connections past the
//!    configured horizon are closed.
//!
//! Interest is recomputed after every step ([`Conn::desired_interest`]):
//! a connection waiting only on a worker is deregistered entirely and
//! re-registered when its completion lands, so the level-triggered
//! poller never spins on a socket the loop cannot make progress on.

use super::conn::{render_response, Conn, Limits};
use super::queue::{BoundedQueue, PushError};
use super::{json_escape, Completion, Job, ServerStats};
use crate::remote::RemoteEngine;
use crate::slot::{EpochModel, ModelSlot};
use cxk_core::MODEL_FORMAT_VERSION;
use mio::{Events, Interest, Poll, Registry, Token};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The listener's token.
pub(crate) const LISTENER: Token = Token(0);
/// The waker's token (worker completions pending).
pub(crate) const WAKER: Token = Token(1);
/// Connection tokens start here; token − base = slab index.
const CONN_BASE: usize = 2;

/// Poll timeout; also the timeout-sweep cadence.
const TICK: Duration = Duration::from_millis(100);

/// Everything the readiness loop owns or shares.
pub(crate) struct Acceptor {
    pub listener: TcpListener,
    pub poll: Poll,
    pub completions: crossbeam_channel::Receiver<Completion>,
    pub queue: Arc<BoundedQueue<Job>>,
    pub slot: Arc<ModelSlot>,
    pub stats: Arc<ServerStats>,
    pub shutdown: Arc<AtomicBool>,
    pub limits: Limits,
    /// Keep-alive disabled server-side: force every request to close.
    pub force_close: bool,
    /// Reap a connection with no traffic in either direction after this
    /// long (the keep-alive horizon; `io_timeout` when keep-alive is
    /// off, so a connect-and-say-nothing socket still goes away).
    pub idle_horizon: Duration,
    pub io_timeout: Duration,
    pub brute: bool,
    /// The remote shard topology, when serving through shard daemons —
    /// `GET /stats` reports its per-shard counters.
    pub remote: Option<Arc<RemoteEngine>>,
}

/// Runs the loop until shutdown. Closing the queue on the way out is the
/// workers' exit signal.
pub(crate) fn run(acceptor: Acceptor) {
    let Acceptor {
        listener,
        mut poll,
        completions,
        queue,
        slot,
        stats,
        shutdown,
        limits,
        force_close,
        idle_horizon,
        io_timeout,
        brute,
        remote,
    } = acceptor;
    let registry = poll.registry().clone();
    let mut events = Events::with_capacity(256);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut next_generation: u64 = 0;
    // A legitimate pipeline never needs more buffered input than one
    // maximal request plus head-sized slack for its successors.
    let fill_cap = limits.max_head + limits.max_body as usize + (4 << 10);
    let mut last_sweep = Instant::now();

    loop {
        if poll.poll(&mut events, Some(TICK)).is_err() {
            break;
        }
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let now = Instant::now();

        // Step 2: worker completions → write buffers.
        while let Ok(done) = completions.try_recv() {
            let Some(Some(conn)) = conns.get_mut(done.token) else {
                continue;
            };
            if conn.generation != done.generation {
                continue;
            }
            conn.in_flight = false;
            conn.queue_bytes(&done.bytes);
            if done.close {
                conn.close_after_flush = true;
            }
            let keep = pump(
                conn,
                done.token,
                &queue,
                &slot,
                &stats,
                &limits,
                force_close,
                brute,
                remote.as_deref(),
                now,
            );
            settle(&mut conns, &mut free, done.token, &registry, keep);
        }

        // Step 3: socket readiness.
        for event in events.iter() {
            match event.token() {
                LISTENER => accept_all(
                    &listener,
                    &registry,
                    &mut conns,
                    &mut free,
                    &mut next_generation,
                    &stats,
                    now,
                ),
                WAKER => {} // completions already drained above
                Token(t) => {
                    let idx = t - CONN_BASE;
                    let Some(Some(conn)) = conns.get_mut(idx) else {
                        continue;
                    };
                    let mut keep = true;
                    if event.is_readable() || event.is_read_closed() {
                        keep = conn.fill(fill_cap, now).is_ok();
                    }
                    if keep && event.is_writable() {
                        keep = conn.flush(now).is_ok();
                    }
                    if keep {
                        keep = pump(
                            conn,
                            idx,
                            &queue,
                            &slot,
                            &stats,
                            &limits,
                            force_close,
                            brute,
                            remote.as_deref(),
                            now,
                        );
                    }
                    settle(&mut conns, &mut free, idx, &registry, keep);
                }
            }
        }

        // Step 4: timeout sweep, once per tick.
        if now.duration_since(last_sweep) >= TICK {
            last_sweep = now;
            sweep(
                &mut conns,
                &mut free,
                &registry,
                &slot,
                &stats,
                io_timeout,
                idle_horizon,
                now,
            );
        }
    }

    // Shutdown: stop feeding workers; they drain what is queued and exit.
    queue.close();
}

/// Accepts until `WouldBlock`, registering each connection for reads.
#[allow(clippy::too_many_arguments)]
fn accept_all(
    listener: &TcpListener,
    registry: &Registry,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
    next_generation: &mut u64,
    stats: &ServerStats,
    now: Instant,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                stats.connections.fetch_add(1, Ordering::Relaxed);
                *next_generation += 1;
                let mut conn = Conn::new(stream, *next_generation, now);
                let idx = free.pop().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                if !update_interest(registry, Token(idx + CONN_BASE), &mut conn) {
                    free.push(idx);
                    continue;
                }
                conns[idx] = Some(conn);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // Transient accept failure (EMFILE, aborted handshake):
            // leave the rest for the next readiness event.
            Err(_) => break,
        }
    }
}

/// Parse → dispatch → flush for one connection; `false` means drop it.
#[allow(clippy::too_many_arguments)]
fn pump(
    conn: &mut Conn,
    idx: usize,
    queue: &BoundedQueue<Job>,
    slot: &ModelSlot,
    stats: &ServerStats,
    limits: &Limits,
    force_close: bool,
    brute: bool,
    remote: Option<&RemoteEngine>,
    now: Instant,
) -> bool {
    let before = conn.requests_parsed;
    let parsed = conn.parse_step(limits, force_close);
    if parsed > 0 {
        stats.requests.fetch_add(parsed as u64, Ordering::Relaxed);
        if before < 2 && conn.requests_parsed >= 2 {
            stats.reused.fetch_add(1, Ordering::Relaxed);
        }
    }
    dispatch(conn, idx, queue, slot, stats, brute, remote);
    conn.flush(now).is_ok()
}

/// Answers or forwards every dispatchable pending request, in order.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    conn: &mut Conn,
    idx: usize,
    queue: &BoundedQueue<Job>,
    slot: &ModelSlot,
    stats: &ServerStats,
    brute: bool,
    remote: Option<&RemoteEngine>,
) {
    while !conn.in_flight && !conn.close_after_flush {
        let Some(request) = conn.pending.pop_front() else {
            break;
        };
        let close = request.close;
        match (request.method.as_str(), request.path.as_str()) {
            // Engine-bound work goes through the bounded queue.
            ("POST", "/classify") | ("POST", "/reload") => {
                let job = Job {
                    token: idx,
                    generation: conn.generation,
                    request,
                };
                match queue.try_push(job) {
                    Ok(()) => {
                        conn.in_flight = true;
                        if close {
                            conn.close_after_flush = true;
                        }
                        break;
                    }
                    Err(PushError::Full(_)) => {
                        // Shed immediately: the whole point of the bound.
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let body = r#"{"error":"server is at capacity; retry shortly"}"#;
                        conn.queue_bytes(&render_response(503, slot.epoch(), body, close, Some(1)));
                        if close {
                            conn.close_after_flush = true;
                        }
                    }
                    Err(PushError::Closed(_)) => {
                        stats.errors.fetch_add(1, Ordering::Relaxed);
                        let body = r#"{"error":"server is shutting down"}"#;
                        conn.queue_bytes(&render_response(503, slot.epoch(), body, true, None));
                        conn.close_after_flush = true;
                    }
                }
            }
            // Read-only endpoints answer inline from shared state — no
            // engine, no queue slot, no worker: they stay responsive
            // even when the queue is full and every worker is busy.
            ("GET", "/model") => {
                let current = slot.current();
                let body = model_json(&current);
                conn.queue_bytes(&render_response(200, current.epoch, &body, close, None));
                if close {
                    conn.close_after_flush = true;
                }
            }
            ("GET", "/stats") => {
                let current = slot.current();
                let body = stats_json(&current, stats, queue, brute, remote);
                conn.queue_bytes(&render_response(200, current.epoch, &body, close, None));
                if close {
                    conn.close_after_flush = true;
                }
            }
            _ => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let body = r#"{"error":"no such endpoint (POST /classify, POST /reload, GET /model, GET /stats)"}"#;
                conn.queue_bytes(&render_response(404, slot.epoch(), body, close, None));
                if close {
                    conn.close_after_flush = true;
                }
            }
        }
    }

    // A deferred parse error is answered only once every response owed
    // for earlier pipelined requests has been queued — order first.
    if !conn.in_flight && conn.pending.is_empty() && !conn.close_after_flush {
        if let Some(e) = conn.parse_error.take() {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            let body = format!(r#"{{"error":"{}"}}"#, json_escape(&e.message));
            conn.queue_bytes(&render_response(e.status, slot.epoch(), &body, true, None));
            conn.close_after_flush = true;
        }
    }
}

/// Whether the connection has said everything it ever will.
fn finished(conn: &Conn) -> bool {
    let flushed = !conn.has_unsent();
    if conn.close_after_flush && !conn.in_flight && conn.pending.is_empty() && flushed {
        return true;
    }
    // Peer gone and nothing owed in either direction.
    conn.peer_closed
        && !conn.in_flight
        && conn.pending.is_empty()
        && flushed
        && conn.parse_error.is_none()
}

/// Applies the post-activity disposition for slot `idx`: drop on error
/// or completion, otherwise refresh poller interest.
fn settle(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    idx: usize,
    registry: &Registry,
    keep: bool,
) {
    let Some(conn) = conns[idx].as_mut() else {
        return;
    };
    if !keep || finished(conn) || !update_interest(registry, Token(idx + CONN_BASE), conn) {
        drop_conn(conns, free, idx, registry);
    }
}

/// Deregisters (if registered) and frees slot `idx`.
fn drop_conn(conns: &mut [Option<Conn>], free: &mut Vec<usize>, idx: usize, registry: &Registry) {
    if let Some(conn) = conns[idx].take() {
        if conn.registered.is_some() {
            let _ = registry.deregister(&conn.stream);
        }
        free.push(idx);
    }
}

/// Syncs poller registration with [`Conn::desired_interest`]; `false`
/// means the registration itself failed and the connection is unusable.
fn update_interest(registry: &Registry, token: Token, conn: &mut Conn) -> bool {
    let want = conn.desired_interest();
    let interest = |(read, write): (bool, bool)| {
        let mut i = if read {
            Interest::READABLE
        } else {
            Interest::WRITABLE
        };
        if read && write {
            i = i | Interest::WRITABLE;
        }
        i
    };
    match (conn.registered, want) {
        (Some(current), wanted) if current == wanted => true,
        (Some(_), (false, false)) => {
            let ok = registry.deregister(&conn.stream).is_ok();
            conn.registered = None;
            ok
        }
        (Some(_), wanted) => {
            let ok = registry
                .reregister(&conn.stream, token, interest(wanted))
                .is_ok();
            if ok {
                conn.registered = Some(wanted);
            }
            ok
        }
        (None, (false, false)) => true,
        (None, wanted) => {
            let ok = registry
                .register(&conn.stream, token, interest(wanted))
                .is_ok();
            if ok {
                conn.registered = Some(wanted);
            }
            ok
        }
    }
}

/// Once-per-tick scan for stalled and idle connections.
#[allow(clippy::too_many_arguments)]
fn sweep(
    conns: &mut [Option<Conn>],
    free: &mut Vec<usize>,
    registry: &Registry,
    slot: &ModelSlot,
    stats: &ServerStats,
    io_timeout: Duration,
    idle_horizon: Duration,
    now: Instant,
) {
    for idx in 0..conns.len() {
        let Some(conn) = conns[idx].as_mut() else {
            continue;
        };
        let stalled_for = now.duration_since(conn.last_activity);
        let mid_request = conn.has_buffered_input()
            && conn.pending.is_empty()
            && !conn.in_flight
            && conn.parse_error.is_none()
            && !conn.close_after_flush;
        if mid_request && stalled_for > io_timeout {
            // A trickling or stalled request head/body: answer 408 and
            // close rather than holding the buffer forever.
            stats.errors.fetch_add(1, Ordering::Relaxed);
            let body = r#"{"error":"request timed out"}"#;
            conn.queue_bytes(&render_response(408, slot.epoch(), body, true, None));
            conn.close_after_flush = true;
            let keep = conn.flush(now).is_ok();
            settle(conns, free, idx, registry, keep);
        } else if conn.has_unsent() && stalled_for > io_timeout {
            // The peer stopped reading its responses: cut it loose.
            drop_conn(conns, free, idx, registry);
        } else {
            let idle = !conn.has_buffered_input()
                && conn.pending.is_empty()
                && !conn.in_flight
                && !conn.has_unsent();
            if idle && stalled_for > idle_horizon {
                drop_conn(conns, free, idx, registry);
            }
        }
    }
}

/// `GET /model`: metadata for the live epoch.
fn model_json(current: &EpochModel) -> String {
    let model = &current.model;
    let rep_items: Vec<String> = model.reps.iter().map(|r| r.len().to_string()).collect();
    format!(
        r#"{{"epoch":{},"format_version":{},"k":{},"f":{},"gamma":{},"labels":{},"vocabulary":{},"paths":{},"rep_items":[{}],"trained_documents":{},"trained_transactions":{}}}"#,
        current.epoch,
        MODEL_FORMAT_VERSION,
        model.k(),
        model.params.f,
        model.params.gamma,
        model.labels.len(),
        model.vocabulary.len(),
        model.paths.len(),
        rep_items.join(","),
        model.trained_documents,
        model.trained_transactions,
    )
}

/// `GET /stats`: counters, queue state and engine layout. Scalar fields
/// stay ahead of the engine detail so flat `"field":value` scrapers keep
/// working on everything before the arrays.
fn stats_json(
    current: &EpochModel,
    stats: &ServerStats,
    queue: &BoundedQueue<Job>,
    brute: bool,
    remote: Option<&RemoteEngine>,
) -> String {
    // Per-shard detail: one object per shard, in range order. Remote
    // counters live outside the epoch (the topology survives reloads);
    // sharded counters count since this epoch's engine was built.
    let engine_detail = if let Some(remote) = remote {
        let shards: Vec<String> = remote
            .shard_stats()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    r#"{{"shard":{i},"replicas":{},"requests":{},"retries":{},"failovers":{},"bytes":{},"rtt_micros":{}}}"#,
                    s.replicas, s.requests, s.retries, s.failovers, s.bytes, s.rtt_micros
                )
            })
            .collect();
        format!(
            r#""engine":"remote","remote_shards":{},"remote_shard_stats":[{}]"#,
            remote.shard_count(),
            shards.join(",")
        )
    } else {
        match (current.sharded.as_ref(), current.tree.as_ref()) {
            (Some(sharded), _) => {
                let shards: Vec<String> = sharded
                    .shard_stats()
                    .iter()
                    .map(|s| {
                        format!(
                            r#"{{"reps":{},"postings":{},"queries":{},"scored":{}}}"#,
                            s.reps, s.postings, s.queries, s.scored
                        )
                    })
                    .collect();
                format!(
                    r#""engine":"sharded","shards":{},"postings_bytes":{},"shard_stats":[{}]"#,
                    sharded.shard_count(),
                    sharded.postings_bytes(),
                    shards.join(",")
                )
            }
            (None, Some(tree)) => {
                let s = tree.stats();
                format!(
                    r#""engine":"tree","branch":{},"beam":{},"tree_depth":{},"tree_nodes":{},"tuples":{},"nodes_visited":{},"reps_scored":{},"fallbacks":{}"#,
                    s.branch,
                    s.beam,
                    s.depth,
                    s.nodes,
                    s.tuples,
                    s.nodes_visited,
                    s.reps_scored,
                    s.fallbacks
                )
            }
            (None, None) => r#""engine":"replicated""#.to_string(),
        }
    };
    format!(
        r#"{{"epoch":{},"connections":{},"requests":{},"classified":{},"trash":{},"capped":{},"errors":{},"reloads":{},"reload_errors":{},"rejected":{},"reused":{},"queue_depth":{},"queue_len":{},"index_postings":{},"service_p50_micros":{},"service_p99_micros":{},"service_p999_micros":{},"brute_force":{},{engine_detail}}}"#,
        current.epoch,
        stats.connections.load(Ordering::Relaxed),
        stats.requests.load(Ordering::Relaxed),
        stats.classified.load(Ordering::Relaxed),
        stats.trash.load(Ordering::Relaxed),
        stats.capped.load(Ordering::Relaxed),
        stats.errors.load(Ordering::Relaxed),
        stats.reloads.load(Ordering::Relaxed),
        stats.reload_errors.load(Ordering::Relaxed),
        stats.rejected.load(Ordering::Relaxed),
        stats.reused.load(Ordering::Relaxed),
        queue.capacity(),
        queue.len(),
        stats.index_postings.load(Ordering::Relaxed),
        stats.service_hist.percentile(0.5),
        stats.service_hist.percentile(0.99),
        stats.service_hist.percentile(0.999),
        brute,
    )
}
