//! Online classification of XML documents against a trained model.
//!
//! Classification mirrors the training pipeline with **frozen corpus
//! statistics**: the incoming document is parsed, its tree tuples
//! extracted, and every TCU weighted with `ttf.itf` against the training
//! collection's `N_T` / `n_{j,T}` — the document does *not* join the
//! collection, so classification is read-only with respect to the model's
//! statistics and any arrival order of requests yields identical scores.
//! (Unseen terms get `n_{j,T} = 0` and weight 0; unseen tags only ever
//! exact-match themselves, so the symbols they intern into the session's
//! private interners cannot affect similarities either.)
//!
//! The state splits along the sharing boundary the serving layer needs:
//!
//! * `QuerySession` (crate-private) is the **per-worker mutable** half —
//!   private copies of the model's interners and path table (parsing
//!   interns unseen markup), plus the lazily extended tag-path similarity
//!   table. It is cheap relative to the model: no representatives, no
//!   postings.
//! * The [`TrainedModel`] and any index built over its representatives are
//!   **immutable** once published, so they can sit behind an `Arc` and be
//!   shared by every worker — the memory model the sharded engine
//!   (`crate::shard`) is built on.
//!
//! Each tree tuple is assigned by the paper's relocation rule — argmax of
//! `simγJ` over the representatives, trash when every similarity is zero —
//! and the document aggregates its tuples by summed similarity per
//! cluster. [`Classifier::classify`] consults the index first;
//! [`Classifier::classify_brute`] scores every representative. The two are
//! guaranteed to agree exactly (see the `index` module docs), and the
//! sharded scatter/gather path ([`crate::shard::ShardedClassifier`])
//! agrees with both (see the `shard` module docs). [`ClassifyEngine`] is
//! the seam servers hold: one enum over the replicated and sharded
//! execution strategies with a single classify surface.

use crate::index::{Candidates, TagPathIndex};
use crate::remote::{RemoteClassifier, RemoteEngine};
use crate::shard::{ShardedClassifier, ShardedEngine};
use crate::tree::{TreeClassifier, TreeEngine};
use cxk_core::rep::RepItem;
use cxk_core::TrainedModel;
use cxk_p2p::NetworkError;
use cxk_text::{preprocess, ttf_itf, SparseVec, TermStatsBuilder};
use cxk_transact::item::{item_fingerprint, ItemView};
use cxk_transact::txsim::sim_gamma_j;
use cxk_transact::{SimCtx, SimParams, TagPathSimTable};
use cxk_util::{FxHashMap, FxHashSet, Interner, Symbol};
use cxk_xml::parser::{parse_document, XmlError};
use cxk_xml::path::{leaf_tag_path, PathId, PathTable};
use cxk_xml::tuple::{count_tree_tuples, extract_tree_tuples};
use std::sync::Arc;

/// Assignment of one tree tuple (transaction) of the document.
#[derive(Debug, Clone, PartialEq)]
pub struct TupleAssignment {
    /// Cluster id; `k` is the trash cluster.
    pub cluster: u32,
    /// `simγJ` against the winning representative (0 for trash).
    pub similarity: f64,
    /// Representatives actually scored (≤ `k`; the index pruned the rest).
    pub candidates: usize,
}

/// Document-level assignment: the aggregate over the document's tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentAssignment {
    /// Winning cluster id; `k` (trash) when no tuple γ-matched anything.
    pub cluster: u32,
    /// Summed `simγJ` of the tuples assigned to the winning cluster.
    pub score: f64,
    /// Per-tuple assignments, in tree-tuple extraction order.
    pub tuples: Vec<TupleAssignment>,
    /// Whether tuple enumeration hit the per-tree cap
    /// (`TupleLimits::max_tuples_per_tree`): the document was scored on a
    /// truncated tuple set, so the assignment is a best-effort answer.
    pub capped: bool,
}

/// A classification failure, as surfaced through [`ClassifyEngine`].
///
/// The in-process strategies only ever fail to parse; the remote strategy
/// adds the network: a shard's whole replica set timing out or hanging up
/// ([`ClassifyError::Network`] — a [`NetworkError::Timeout`] stays typed
/// so callers can distinguish deadline misses from hangups), or a daemon
/// answering with a protocol/configuration error such as a model-digest
/// mismatch ([`ClassifyError::Remote`]).
#[derive(Debug)]
pub enum ClassifyError {
    /// The document failed to parse.
    Xml(XmlError),
    /// A remote shard could not be reached within the failover budget.
    Network(NetworkError),
    /// A remote shard answered, but with a protocol or configuration
    /// error.
    Remote(String),
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::Xml(e) => write!(f, "{e}"),
            ClassifyError::Network(e) => write!(f, "remote shard unavailable: {e}"),
            ClassifyError::Remote(message) => write!(f, "remote shard error: {message}"),
        }
    }
}

impl std::error::Error for ClassifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClassifyError::Xml(e) => Some(e),
            ClassifyError::Network(e) => Some(e),
            ClassifyError::Remote(_) => None,
        }
    }
}

impl From<XmlError> for ClassifyError {
    fn from(e: XmlError) -> Self {
        ClassifyError::Xml(e)
    }
}

impl From<NetworkError> for ClassifyError {
    fn from(e: NetworkError) -> Self {
        ClassifyError::Network(e)
    }
}

/// The per-worker mutable half of a classification session: private
/// interner copies plus the derived structural-similarity table, extended
/// lazily as unseen markup arrives (exactly like the streaming clusterer).
///
/// A session is built from (a shared reference to) a model and never
/// touches it again — every mutation lands in the session's own copies, so
/// any number of sessions can share one `Arc<TrainedModel>` and one
/// immutable index across threads.
#[derive(Debug)]
pub(crate) struct QuerySession {
    /// Copy of the model's label interner (grows with unseen tags).
    labels: Interner,
    /// Copy of the model's term vocabulary (grows with unseen terms).
    vocabulary: Interner,
    /// Copy of the model's path table (grows with unseen paths).
    paths: PathTable,
    /// Preprocessing options frozen at training time.
    build: cxk_transact::BuildOptions,
    tag_sim: TagPathSimTable,
    /// The representatives' tag paths — the permanent base of `tag_sim`.
    base_tag_paths: Vec<PathId>,
    /// Tag paths currently covered by `tag_sim` (base + query paths seen
    /// since the last reset).
    known_tag_paths: FxHashSet<PathId>,
    /// Cap on `known_tag_paths`: the `sim_S` table is dense (`P²` cells,
    /// `O(P²·d²)` to rebuild), so a stream of documents with ever-fresh
    /// markup must not grow it without bound. Past the cap the cache
    /// resets to the base paths; re-arriving paths just re-enter it.
    pub(crate) tag_path_cap: usize,
}

impl QuerySession {
    /// Builds the session's private derived state from `model`.
    pub(crate) fn new(model: &TrainedModel) -> Self {
        let rep_tag_paths = model.rep_tag_paths();
        let tag_sim = TagPathSimTable::build(&rep_tag_paths, &model.paths);
        Self {
            labels: model.labels.clone(),
            vocabulary: model.vocabulary.clone(),
            paths: model.paths.clone(),
            build: model.build.clone(),
            tag_sim,
            known_tag_paths: rep_tag_paths.iter().copied().collect(),
            tag_path_cap: (rep_tag_paths.len() * 4).max(1024),
            base_tag_paths: rep_tag_paths,
        }
    }

    /// The similarity context for scoring this session's queries.
    pub(crate) fn sim_ctx(&self, params: SimParams) -> SimCtx<'_> {
        SimCtx::new(&self.tag_sim, params)
    }

    /// The session's path table (the model's, extended by query markup).
    pub(crate) fn paths(&self) -> &PathTable {
        &self.paths
    }

    /// Paths currently covered by the similarity table (diagnostics).
    #[cfg(test)]
    pub(crate) fn known_tag_paths(&self) -> usize {
        self.known_tag_paths.len()
    }

    /// Parses `xml` and produces its query transactions: per tree tuple, a
    /// list of items weighted against the frozen corpus statistics
    /// (`term_stats` is the model's).
    pub(crate) fn extract(
        &mut self,
        xml: &str,
        term_stats: &TermStatsBuilder,
    ) -> Result<QueryTuples, XmlError> {
        let tree = parse_document(xml, &mut self.labels, &self.build.parse)?;
        let capped = count_tree_tuples(&tree) > self.build.limits.max_tuples_per_tree as u64;
        let tuples = extract_tree_tuples(&tree, &self.build.limits);

        // Per-leaf preprocessing, mirroring the batch builder.
        struct Leaf {
            path: PathId,
            tag_path: PathId,
            raw: String,
            terms: Vec<Symbol>,
            distinct: Vec<Symbol>,
        }
        let mut leaves: Vec<Leaf> = Vec::new();
        let mut leaf_index: FxHashMap<cxk_xml::tree::NodeId, u32> = FxHashMap::default();
        let mut term_doc_counts: FxHashMap<Symbol, u32> = FxHashMap::default();
        let mut new_tag_paths = false;
        for leaf in tree.leaves() {
            let complete = tree.label_path(leaf);
            let path = self.paths.intern(&complete);
            let tag = leaf_tag_path(&tree, leaf);
            let tag_path = self.paths.intern(&tag);
            new_tag_paths |= self.known_tag_paths.insert(tag_path);
            let raw = tree.node(leaf).value().unwrap_or_default().to_string();
            let terms = preprocess(&raw, &mut self.vocabulary, &self.build.pipeline);
            let mut distinct = terms.clone();
            distinct.sort_unstable();
            distinct.dedup();
            // The document does NOT join the collection statistics — but
            // its own document-level counts participate in ttf.itf.
            for &t in &distinct {
                *term_doc_counts.entry(t).or_insert(0) += 1;
            }
            leaf_index.insert(leaf, leaves.len() as u32);
            leaves.push(Leaf {
                path,
                tag_path,
                raw,
                terms,
                distinct,
            });
        }

        if new_tag_paths {
            // Unseen markup: extend the precomputed structural table so
            // sim_S lookups cover the query paths (any index is over the
            // representatives only and needs no rebuild).
            if self.known_tag_paths.len() > self.tag_path_cap {
                // Past the cap, restart the cache from the representatives'
                // paths plus this request's — scores are unaffected (the
                // table always covers rep × query pairs; evicted paths
                // simply rebuild on their next appearance).
                self.known_tag_paths = self.base_tag_paths.iter().copied().collect();
                self.known_tag_paths
                    .extend(leaves.iter().map(|l| l.tag_path));
            }
            let mut all: Vec<PathId> = self.known_tag_paths.iter().copied().collect();
            all.sort_unstable();
            self.tag_sim = TagPathSimTable::build(&all, &self.paths);
        }

        let n_xt = leaves.len() as u32;
        let n_t = term_stats.total_tcus();

        // Document-wide item domain keyed by (path, answer), averaging the
        // ttf.itf weights over the item's occurrences within the document —
        // the batch builder's reconciliation scoped to one document.
        let mut domain: FxHashMap<(PathId, Box<str>), u32> = FxHashMap::default();
        struct QueryItem {
            item: RepItem,
            acc: FxHashMap<Symbol, f64>,
            occurrences: u32,
        }
        let mut items: Vec<QueryItem> = Vec::new();
        let mut tuple_item_ids: Vec<Vec<u32>> = Vec::with_capacity(tuples.len());

        for tuple in &tuples {
            let n_tau = tuple.leaves.len() as u32;
            let mut tuple_counts: FxHashMap<Symbol, u32> = FxHashMap::default();
            for leaf in &tuple.leaves {
                let li = leaf_index[leaf] as usize;
                for &t in &leaves[li].distinct {
                    *tuple_counts.entry(t).or_insert(0) += 1;
                }
            }

            let mut ids: Vec<u32> = Vec::with_capacity(tuple.leaves.len());
            for leaf in &tuple.leaves {
                let li = leaf_index[leaf] as usize;
                let leaf_data = &leaves[li];
                let key = (leaf_data.path, leaf_data.raw.clone().into_boxed_str());
                let id = *domain.entry(key).or_insert_with(|| {
                    items.push(QueryItem {
                        item: RepItem {
                            path: leaf_data.path,
                            tag_path: leaf_data.tag_path,
                            vector: SparseVec::new(),
                            fingerprint: item_fingerprint(leaf_data.path, &leaf_data.raw),
                            source: None,
                        },
                        acc: FxHashMap::default(),
                        occurrences: 0,
                    });
                    (items.len() - 1) as u32
                });
                ids.push(id);

                let entry = &mut items[id as usize];
                entry.occurrences += 1;
                let mut tf: FxHashMap<Symbol, u32> = FxHashMap::default();
                for &t in &leaf_data.terms {
                    *tf.entry(t).or_insert(0) += 1;
                }
                for (&term, &count) in &tf {
                    let nj_tau = tuple_counts.get(&term).copied().unwrap_or(0);
                    let nj_xt = term_doc_counts.get(&term).copied().unwrap_or(0);
                    let nj_t = term_stats.tcus_containing(term);
                    let w = ttf_itf(count, nj_tau, n_tau, nj_xt, n_xt, nj_t, n_t);
                    *entry.acc.entry(term).or_insert(0.0) += w;
                }
            }
            tuple_item_ids.push(ids);
        }

        let items: Vec<RepItem> = items
            .into_iter()
            .map(|q| {
                let n = f64::from(q.occurrences.max(1));
                let pairs: Vec<(Symbol, f64)> = q.acc.iter().map(|(&t, &w)| (t, w / n)).collect();
                RepItem {
                    vector: SparseVec::from_pairs(pairs),
                    ..q.item
                }
            })
            .collect();

        let transactions = tuple_item_ids
            .into_iter()
            .map(|ids| {
                // Transactions are item *sets*: deduplicate repeated items.
                let mut seen: FxHashSet<u32> = FxHashSet::default();
                ids.into_iter()
                    .filter(|&id| seen.insert(id))
                    .map(|id| items[id as usize].clone())
                    .collect()
            })
            .collect();
        Ok(QueryTuples {
            transactions,
            capped,
        })
    }
}

/// One parsed query document's transactions, plus whether the tree-tuple
/// cap truncated the enumeration — every classify strategy carries the
/// flag through to [`DocumentAssignment::capped`].
pub(crate) struct QueryTuples {
    /// Per tree tuple, the deduplicated weighted items.
    pub transactions: Vec<Vec<RepItem>>,
    /// The document exceeded `TupleLimits::max_tuples_per_tree`.
    pub capped: bool,
}

/// The relocation rule over one candidate stream: argmax of `simγJ` with
/// ties to the lowest id, `(k, 0.0)` (trash) when nothing scores above
/// zero. `ids` must ascend for the tie-break to pick the lowest id —
/// every caller iterates a sorted candidate list or an id range.
pub(crate) fn argmax_tuple(
    ctx: &SimCtx<'_>,
    views: &[ItemView<'_>],
    rep_views: &[Vec<ItemView<'_>>],
    ids: impl Iterator<Item = u32>,
    trash: u32,
) -> (u32, f64) {
    let mut best_j = trash;
    let mut best_s = 0.0f64;
    for j in ids {
        let s = sim_gamma_j(ctx, views, &rep_views[j as usize]);
        if s > best_s {
            best_s = s;
            best_j = j;
        }
    }
    if best_s == 0.0 {
        (trash, 0.0)
    } else {
        (best_j, best_s)
    }
}

/// Document aggregate over per-tuple assignments: summed similarity per
/// proper cluster, ties to the lowest id; all-trash documents are trash.
/// `capped` records whether the tuple set was truncated at extraction.
pub(crate) fn aggregate_document(
    k: usize,
    tuples: Vec<TupleAssignment>,
    capped: bool,
) -> DocumentAssignment {
    let mut totals = vec![0.0f64; k];
    for t in &tuples {
        if (t.cluster as usize) < k {
            totals[t.cluster as usize] += t.similarity;
        }
    }
    let mut cluster = k as u32;
    let mut score = 0.0f64;
    for (j, &total) in totals.iter().enumerate() {
        if total > score {
            score = total;
            cluster = j as u32;
        }
    }
    DocumentAssignment {
        cluster,
        score,
        tuples,
        capped,
    }
}

/// A classification session over a trained model, scoring against its
/// **own full index** — the replicated strategy: every worker that builds
/// one carries a private copy of the postings.
///
/// The classifier is single-threaded by design (`&mut self`: its session's
/// interners grow as unseen markup arrives); servers give each worker its
/// own instance. The model itself is behind an `Arc` and never mutated, so
/// instances built via [`Classifier::shared`] duplicate only the postings
/// and the session, not the representatives.
pub struct Classifier {
    model: Arc<TrainedModel>,
    session: QuerySession,
    index: TagPathIndex,
}

impl Classifier {
    /// Builds the derived state (session, inverted index) for `model`.
    pub fn new(model: TrainedModel) -> Self {
        Self::shared(Arc::new(model))
    }

    /// Builds a classifier over an already shared model (hot-reload
    /// workers: the model `Arc` is cloned, the index and session are this
    /// worker's own).
    pub fn shared(model: Arc<TrainedModel>) -> Self {
        let session = QuerySession::new(&model);
        let index = TagPathIndex::build(&model.reps, &model.paths, model.params);
        Self {
            model,
            session,
            index,
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        &self.model
    }

    /// The inverted index (diagnostics).
    pub fn index(&self) -> &TagPathIndex {
        &self.index
    }

    /// Number of proper clusters `k`.
    pub fn k(&self) -> usize {
        self.model.k()
    }

    /// The trash cluster's id (`k`).
    pub fn trash_id(&self) -> u32 {
        self.model.trash_id()
    }

    #[cfg(test)]
    pub(crate) fn session_mut(&mut self) -> &mut QuerySession {
        &mut self.session
    }

    /// Classifies one XML document using the inverted index.
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, true)
    }

    /// Classifies one XML document scoring every representative (the
    /// reference the index must agree with).
    ///
    /// # Errors
    /// Returns the XML parse error; the classifier stays usable.
    pub fn classify_brute(&mut self, xml: &str) -> Result<DocumentAssignment, XmlError> {
        self.classify_impl(xml, false)
    }

    fn classify_impl(&mut self, xml: &str, indexed: bool) -> Result<DocumentAssignment, XmlError> {
        let query = self.session.extract(xml, &self.model.term_stats)?;
        let tuples = query.transactions;
        let k = self.model.k();
        let ctx = self.session.sim_ctx(self.model.params);
        let rep_views: Vec<Vec<ItemView<'_>>> = self.model.reps.iter().map(|r| r.views()).collect();

        let mut assignments = Vec::with_capacity(tuples.len());
        for tuple in &tuples {
            let views: Vec<ItemView<'_>> = tuple.iter().map(RepItem::view).collect();
            let candidates = if indexed {
                self.index.candidates(&views, self.session.paths())
            } else {
                Candidates::All
            };
            let (cluster, similarity) =
                argmax_tuple(&ctx, &views, &rep_views, candidates.ids(k), k as u32);
            assignments.push(TupleAssignment {
                cluster,
                similarity,
                candidates: candidates.len(k),
            });
        }
        Ok(aggregate_document(k, assignments, query.capped))
    }
}

/// The serving-layer seam over the classify execution strategies: a
/// worker holds one `ClassifyEngine` per model epoch and drives it through
/// a single surface, regardless of how scoring is laid out.
///
/// * [`ClassifyEngine::Replicated`] — the worker owns a full
///   [`Classifier`] (its own postings copy). Memory scales with the worker
///   count; no cross-worker sharing.
/// * [`ClassifyEngine::Sharded`] — the worker holds a lightweight
///   [`ShardedClassifier`] over the epoch's shared
///   [`ShardedEngine`]: one immutable index per epoch for the
///   whole pool, representatives partitioned across shards, queries
///   scattered and gathered (bit-identical to brute force; see the `shard`
///   module docs).
/// * [`ClassifyEngine::Remote`] — the worker holds a
///   [`RemoteClassifier`] over the server's shared [`RemoteEngine`]
///   topology: the same scatter/gather, but the shards are daemons in
///   other processes and only postings for *their* ranges are resident
///   anywhere (bit-identical too; see the `remote` module docs).
/// * [`ClassifyEngine::Tree`] — the worker holds a [`TreeClassifier`]
///   over the epoch's shared [`TreeEngine`]: assignment descends a
///   hierarchical representative tree under a beam-width knob, then
///   exactly re-ranks the reached leaves. The only *approximate*
///   strategy — bit-identical to brute force at full beam, a measured
///   accuracy/latency trade-off below it (see the `tree` module docs).
pub enum ClassifyEngine {
    /// One private full-index classifier (the historical layout).
    Replicated(Box<Classifier>),
    /// A per-worker session over the epoch's shared sharded engine.
    Sharded(Box<ShardedClassifier>),
    /// A per-worker session over the shared remote shard topology.
    Remote(Box<RemoteClassifier>),
    /// A per-worker session over the epoch's shared representative tree.
    Tree(Box<TreeClassifier>),
}

impl ClassifyEngine {
    /// Builds the engine for one epoch: remote when the server was
    /// configured with a remote topology (which outlives epochs), sharded
    /// when the epoch published a shared sharded engine, tree when it
    /// published a shared representative tree, replicated otherwise.
    pub fn for_epoch(
        model: &Arc<TrainedModel>,
        sharded: Option<&Arc<ShardedEngine>>,
        remote: Option<&Arc<RemoteEngine>>,
        tree: Option<&Arc<TreeEngine>>,
    ) -> Self {
        match (remote, sharded, tree) {
            (Some(topology), _, _) => ClassifyEngine::Remote(Box::new(RemoteClassifier::new(
                Arc::clone(topology),
                Arc::clone(model),
            ))),
            (None, Some(engine), _) => {
                ClassifyEngine::Sharded(Box::new(ShardedClassifier::new(Arc::clone(engine))))
            }
            (None, None, Some(engine)) => {
                ClassifyEngine::Tree(Box::new(TreeClassifier::new(Arc::clone(engine))))
            }
            (None, None, None) => {
                ClassifyEngine::Replicated(Box::new(Classifier::shared(Arc::clone(model))))
            }
        }
    }

    /// Classifies one XML document (index-pruned).
    ///
    /// # Errors
    /// [`ClassifyError::Xml`] on parse failure; the network variants only
    /// when running remote. The engine stays usable either way.
    pub fn classify(&mut self, xml: &str) -> Result<DocumentAssignment, ClassifyError> {
        match self {
            ClassifyEngine::Replicated(c) => c.classify(xml).map_err(ClassifyError::Xml),
            ClassifyEngine::Sharded(c) => c.classify(xml).map_err(ClassifyError::Xml),
            ClassifyEngine::Remote(c) => c.classify(xml),
            ClassifyEngine::Tree(c) => c.classify(xml).map_err(ClassifyError::Xml),
        }
    }

    /// Classifies one XML document scoring every representative.
    ///
    /// # Errors
    /// As [`ClassifyEngine::classify`].
    pub fn classify_brute(&mut self, xml: &str) -> Result<DocumentAssignment, ClassifyError> {
        match self {
            ClassifyEngine::Replicated(c) => c.classify_brute(xml).map_err(ClassifyError::Xml),
            ClassifyEngine::Sharded(c) => c.classify_brute(xml).map_err(ClassifyError::Xml),
            ClassifyEngine::Remote(c) => c.classify_brute(xml),
            ClassifyEngine::Tree(c) => c.classify_brute(xml).map_err(ClassifyError::Xml),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> &TrainedModel {
        match self {
            ClassifyEngine::Replicated(c) => c.model(),
            ClassifyEngine::Sharded(c) => c.model(),
            ClassifyEngine::Remote(c) => c.model(),
            ClassifyEngine::Tree(c) => c.model(),
        }
    }

    /// The trash cluster's id (`k`).
    pub fn trash_id(&self) -> u32 {
        self.model().trash_id()
    }

    /// Total posting entries resident in *this* process behind the engine
    /// (the worker's own index, or the shared shard set; zero when remote
    /// — the postings live in the daemons — and when running the tree,
    /// which holds merged representatives instead of postings).
    pub fn posting_entries(&self) -> usize {
        match self {
            ClassifyEngine::Replicated(c) => c.index().posting_entries(),
            ClassifyEngine::Sharded(c) => c.engine().posting_entries(),
            ClassifyEngine::Remote(_) => 0,
            ClassifyEngine::Tree(_) => 0,
        }
    }

    /// The shared sharded engine, when running sharded.
    pub fn sharded_engine(&self) -> Option<&Arc<ShardedEngine>> {
        match self {
            ClassifyEngine::Sharded(c) => Some(c.engine()),
            _ => None,
        }
    }

    /// The shared remote topology, when running remote.
    pub fn remote_engine(&self) -> Option<&Arc<RemoteEngine>> {
        match self {
            ClassifyEngine::Remote(c) => Some(c.engine()),
            _ => None,
        }
    }

    /// The shared representative tree, when running the tree strategy.
    pub fn tree_engine(&self) -> Option<&Arc<TreeEngine>> {
        match self {
            ClassifyEngine::Tree(c) => Some(c.engine()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxk_core::{CxkConfig, EngineBuilder, TrainedModel};
    use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

    fn mining_doc(i: usize) -> String {
        let titles = [
            "mining frequent patterns clustering trees",
            "clustering transactional data mining streams",
            "frequent subtree mining patterns forest",
            "partitional clustering centroids mining",
            "itemset mining patterns association clustering",
            "tree mining clustering xml patterns",
        ];
        format!(
            r#"<dblp><inproceedings key="m{i}"><author>A. Miner</author><title>{}</title><booktitle>KDD</booktitle></inproceedings></dblp>"#,
            titles[i % titles.len()]
        )
    }

    fn networking_doc(i: usize) -> String {
        let titles = [
            "routing congestion protocols networks",
            "packet routing networks latency congestion",
            "congestion control protocols bandwidth networks",
            "network routing topology protocols packets",
            "wireless networks routing protocols handoff",
            "multicast routing networks congestion packets",
        ];
        format!(
            r#"<dblp><article key="n{i}"><author>B. Netter</author><title>{}</title><journal>Networking</journal></article></dblp>"#,
            titles[i % titles.len()]
        )
    }

    fn model() -> TrainedModel {
        let mut builder = DatasetBuilder::new(BuildOptions::default());
        for i in 0..6 {
            builder.add_xml(&mining_doc(i)).unwrap();
        }
        for i in 0..6 {
            builder.add_xml(&networking_doc(i)).unwrap();
        }
        let ds = builder.finish();
        let mut config = CxkConfig::new(2);
        config.params = SimParams::new(0.5, 0.6);
        config.seed = 7;
        EngineBuilder::from_cxk_config(&config)
            .build()
            .expect("valid test config")
            .fit(&ds)
            .expect("fit succeeds")
            .into_model(&ds, BuildOptions::default())
    }

    #[test]
    fn classifies_into_the_topical_cluster() {
        let mut c = Classifier::new(model());
        let mining = c.classify(&mining_doc(17)).expect("classify");
        let networking = c.classify(&networking_doc(17)).expect("classify");
        assert_ne!(mining.cluster, c.trash_id());
        assert_ne!(networking.cluster, c.trash_id());
        assert_ne!(mining.cluster, networking.cluster);
        assert!(mining.score > 0.0);
        assert!(!mining.tuples.is_empty());
    }

    #[test]
    fn indexed_matches_brute_force_exactly() {
        let mut c = Classifier::new(model());
        let docs = [
            mining_doc(9),
            networking_doc(9),
            r#"<recipes><recipe id="r1"><chef>Q. Cook</chef><dish>braised seitan stew</dish></recipe></recipes>"#.to_string(),
        ];
        for doc in &docs {
            let indexed = c.classify(doc).expect("indexed");
            let brute = c.classify_brute(doc).expect("brute");
            assert_eq!(indexed.cluster, brute.cluster, "{doc}");
            assert_eq!(indexed.score, brute.score, "bit-for-bit: {doc}");
            assert_eq!(indexed.tuples.len(), brute.tuples.len());
            for (a, b) in indexed.tuples.iter().zip(&brute.tuples) {
                assert_eq!(a.cluster, b.cluster);
                assert_eq!(a.similarity, b.similarity);
                assert!(a.candidates <= b.candidates);
            }
        }
    }

    #[test]
    fn alien_document_is_trash_and_pruned_to_nothing() {
        let mut c = Classifier::new(model());
        let alien = r#"<menu><entree id="e1"><flavor>umami</flavor></entree></menu>"#;
        let report = c.classify(alien).expect("classify");
        assert_eq!(report.cluster, c.trash_id());
        assert_eq!(report.score, 0.0);
        // Nothing shares a tag or a term with the bibliographic model: the
        // index prunes every representative.
        assert!(report.tuples.iter().all(|t| t.candidates == 0));
    }

    #[test]
    fn unseen_markup_does_not_poison_later_requests() {
        let mut c = Classifier::new(model());
        let before = c.classify(&mining_doc(3)).unwrap();
        // An alien document interns new labels, paths and terms…
        let _ = c
            .classify(r#"<menu><entree id="e1"><flavor>umami braised</flavor></entree></menu>"#)
            .unwrap();
        // …and the same mining document still scores identically.
        let after = c.classify(&mining_doc(3)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn tag_path_cache_stays_bounded_under_ever_fresh_markup() {
        let mut c = Classifier::new(model());
        c.session_mut().tag_path_cap = 8; // shrink to exercise the reset cheaply
        let cap = c.session_mut().tag_path_cap;
        let before = c.classify(&mining_doc(1)).unwrap();
        // A hostile stream where every document invents new markup must not
        // grow the dense sim_S table without bound.
        for i in 0..50 {
            let doc = format!("<r{i}><leaf{i}>word{i}</leaf{i}></r{i}>");
            let report = c.classify(&doc).unwrap();
            assert_eq!(report.cluster, c.trash_id());
            assert!(
                c.session_mut().known_tag_paths() <= cap + 4,
                "cache must reset: {} paths after doc {i}",
                c.session_mut().known_tag_paths()
            );
        }
        // Evicted paths re-enter on their next appearance with identical
        // scores.
        let after = c.classify(&mining_doc(1)).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn parse_errors_leave_the_classifier_usable() {
        let mut c = Classifier::new(model());
        assert!(c.classify("<broken><xml>").is_err());
        let report = c.classify(&mining_doc(0)).expect("still works");
        assert_ne!(report.cluster, c.trash_id());
    }

    #[test]
    fn shared_models_are_not_duplicated() {
        let model = Arc::new(model());
        let a = Classifier::shared(Arc::clone(&model));
        let _b = Classifier::shared(Arc::clone(&model));
        // Both classifiers point at the same representatives allocation.
        assert!(std::ptr::eq(a.model(), &*model));
        assert_eq!(Arc::strong_count(&model), 3);
    }

    #[test]
    fn engine_seam_agrees_across_strategies() {
        let model = Arc::new(model());
        let engine = Arc::new(ShardedEngine::build(Arc::clone(&model), 3));
        let mut replicated = ClassifyEngine::for_epoch(&model, None, None, None);
        let mut sharded = ClassifyEngine::for_epoch(&model, Some(&engine), None, None);
        assert!(replicated.sharded_engine().is_none());
        assert!(sharded.sharded_engine().is_some());
        assert!(sharded.remote_engine().is_none());
        assert!(sharded.tree_engine().is_none());
        for doc in [mining_doc(2), networking_doc(4)] {
            let a = replicated.classify(&doc).expect("replicated");
            let b = sharded.classify(&doc).expect("sharded");
            assert_eq!(a, b, "strategies must be bit-identical");
            let brute = sharded.classify_brute(&doc).expect("sharded brute");
            assert_eq!(a.cluster, brute.cluster);
            assert_eq!(a.score, brute.score);
        }
        assert!(replicated.posting_entries() > 0);
        assert_eq!(
            replicated.posting_entries(),
            sharded.posting_entries(),
            "sharding repartitions the postings without changing their total"
        );
    }

    #[test]
    fn engine_seam_tree_arm_matches_brute_at_full_beam() {
        use crate::tree::{TreeConfig, TreeEngine};
        let model = Arc::new(model());
        // k = 2 with B = 2: level-less tree, trivially exact — the seam
        // test exercises selection and plumbing, `tree_properties`
        // exercises the descent.
        let tree = Arc::new(TreeEngine::build(
            Arc::clone(&model),
            TreeConfig { branch: 2, beam: 2 },
        ));
        let mut engine = ClassifyEngine::for_epoch(&model, None, None, Some(&tree));
        assert!(engine.tree_engine().is_some());
        assert!(engine.sharded_engine().is_none());
        assert_eq!(engine.posting_entries(), 0, "the tree holds no postings");
        let mut brute = ClassifyEngine::for_epoch(&model, None, None, None);
        for doc in [mining_doc(2), networking_doc(4)] {
            let a = engine.classify(&doc).expect("tree");
            let b = brute.classify_brute(&doc).expect("brute");
            assert_eq!(a, b, "exact tree must be bit-identical");
        }
        assert!(tree.stats().tuples > 0);
    }
}
