//! **cxk_serve** — turn a finished CXK-means run into a running service.
//!
//! The paper's protocol ends when the global representatives converge; this
//! crate is the layer that makes that result *servable*, the repo's path
//! from reproduction to production:
//!
//! * [`classify`] — an online [`Classifier`] that
//!   parses an incoming XML document with the trained model's interners,
//!   weights its TCUs against the frozen corpus statistics, and assigns
//!   each tree tuple by the relocation rule (argmax `simγJ`, trash when
//!   nothing γ-matches).
//! * [`index`] — the inverted tag-path/term index
//!   ([`TagPathIndex`]) that prunes the
//!   representatives a query must be scored against. Pruning is provably
//!   sound under the paper's exact tag matcher: indexed and brute-force
//!   assignments agree bit-for-bit.
//! * [`shard`] — sharded scatter/gather classification: the
//!   representatives partitioned into contiguous shards, each owning its
//!   postings slice ([`ShardedEngine`]); a query scatters to every shard
//!   and a gather takes the global argmax, bit-identical to brute force.
//!   One immutable engine per model epoch is shared by the whole worker
//!   pool, so resident index memory is constant in the thread count.
//! * [`tree`] — the sublinear strategy: a hierarchical representative
//!   tree ([`TreeEngine`]) whose internal nodes are merged
//!   representatives, descended greedily by `simγJ` under a beam-width
//!   accuracy knob before an exact re-rank of the reached leaves —
//!   bit-identical to brute force at full beam, a measured
//!   accuracy/latency trade-off below it.
//! * [`remote`] — the same scatter/gather pushed across process
//!   boundaries over the `cxk_p2p` framed TCP fabric: [`ShardDaemon`]s
//!   each serve one representative range of the model, and a
//!   [`RemoteClassifier`] fans every query out to all of them with
//!   per-shard deadlines and replica failover — still bit-identical to
//!   brute force (see the module docs for the wire argument).
//! * [`http`] — a dependency-free multi-threaded HTTP/1.1 server
//!   ([`Server`]) exposing `POST /classify`, `POST /reload`, `GET /model`
//!   and `GET /stats`, with one [`ClassifyEngine`] (replicated, sharded
//!   or remote, per [`ServeOptions::shards`] /
//!   [`ServeOptions::remote_shards`]) per worker thread.
//! * [`slot`] — the hot-reload seam: a [`ModelSlot`] holding an
//!   epoch-versioned `Arc<TrainedModel>` that [`Server::reload`], the
//!   `POST /reload` endpoint and the opt-in file watcher
//!   ([`ServeOptions::watch`]) swap atomically while workers keep
//!   serving. Each worker lazily rebuilds its classifier when it observes
//!   a newer epoch, so in-flight requests finish on the model they
//!   started with and nothing is dropped across a swap.
//!
//! Model snapshots themselves (`*.cxkmodel`) live in `cxk_core::model`;
//! this crate consumes a [`cxk_core::TrainedModel`] however it was
//! obtained — trained in-process, loaded from disk at startup, or hot
//! swapped in later (the periodic-retrain loop `cxk_stream` drives).
//!
//! # Example
//!
//! ```
//! use cxk_core::EngineBuilder;
//! use cxk_serve::Classifier;
//! use cxk_transact::{BuildOptions, DatasetBuilder};
//!
//! let mut builder = DatasetBuilder::new(BuildOptions::default());
//! builder.add_xml(r#"<dblp><inproceedings key="a"><author>M. Zaki</author>
//!     <title>mining frequent trees</title></inproceedings></dblp>"#)?;
//! builder.add_xml(r#"<dblp><article key="b"><author>V. Jacobson</author>
//!     <title>congestion avoidance and control</title></article></dblp>"#)?;
//! let dataset = builder.finish();
//!
//! let engine = EngineBuilder::new(2)
//!     .similarity(0.5, 0.4)
//!     .build()
//!     .expect("valid configuration");
//! let fit = engine.fit(&dataset).expect("training runs");
//! let model = fit.into_model(&dataset, BuildOptions::default());
//!
//! let mut classifier = Classifier::new(model);
//! let report = classifier.classify(
//!     r#"<dblp><inproceedings key="c"><author>A. Nother</author>
//!     <title>mining frequent patterns</title></inproceedings></dblp>"#,
//! )?;
//! assert!(report.cluster <= classifier.trash_id());
//! # Ok::<(), cxk_xml::parser::XmlError>(())
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod http;
pub mod index;
pub mod remote;
pub mod shard;
pub mod slot;
pub mod tree;

pub use classify::{
    Classifier, ClassifyEngine, ClassifyError, DocumentAssignment, TupleAssignment,
};
pub use http::{assignment_json, json_escape, ServeOptions, Server, ServerStats, StatsSnapshot};
pub use index::{CandidateIds, Candidates, TagPathIndex};
pub use remote::{RemoteClassifier, RemoteEngine, RemoteShardStats, ShardDaemon};
pub use shard::{Shard, ShardStats, ShardedClassifier, ShardedEngine};
pub use slot::{EpochModel, ModelSlot};
pub use tree::{TreeClassifier, TreeConfig, TreeEngine, TreeStats};
