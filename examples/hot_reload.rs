//! Hot model reload: a running server swaps onto a retrained model.
//!
//! ```text
//! cargo run -p cxk_bench --release --example hot_reload
//! ```
//!
//! The paper's protocol assumes clustering is periodically re-run as the
//! corpus evolves; this example closes that loop against a *live* service.
//! A classification server boots on a model trained over two news desks,
//! keeps answering `POST /classify` throughout, and is then hot-swapped —
//! `StreamClusterer::refresh → snapshot_model → Server::reload` — onto a
//! retrain that has seen a third desk. The same article that the epoch-1
//! model threw into the trash cluster is classified properly at epoch 2,
//! and no request was dropped in between.

use cxk_serve::{ServeOptions, Server};
use cxk_stream::{RefreshPolicy, StreamClusterer, StreamOptions};
use cxk_transact::SimParams;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn article(id: usize, desk: &str, headline: &str, body: &str) -> String {
    format!(
        "<feed><article id=\"a{id}\"><desk>{desk}</desk>\
         <headline>{headline}</headline><body>{body}</body></article></feed>"
    )
}

fn sports(id: usize) -> String {
    let stories = [
        (
            "league final goes to overtime",
            "the championship match entered overtime after a late equalizer goal",
        ),
        (
            "sprinter breaks national record",
            "the national sprint record fell at the athletics championship meeting",
        ),
        (
            "derby ends in heated draw",
            "the city derby finished level after two disallowed goals and a red card",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "sports", h, b)
}

fn politics(id: usize) -> String {
    let stories = [
        (
            "parliament debates budget bill",
            "the finance committee sent the budget bill to a full parliament vote",
        ),
        (
            "election commission sets date",
            "the commission announced the election date and registration deadlines",
        ),
        (
            "senate passes trade measure",
            "the senate approved the trade measure after amendments on tariffs",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "politics", h, b)
}

fn tech(id: usize) -> String {
    let stories = [
        (
            "chipmaker unveils new processor",
            "the processor doubles cache and adds vector instructions for inference",
        ),
        (
            "open source database hits milestone",
            "the database project shipped replication and columnar storage support",
        ),
        (
            "browser patches zero day",
            "the vendor shipped an emergency patch for the exploited sandbox escape",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "technology", h, b)
}

/// One blocking `POST /classify`, returning `(status-line, epoch, body)`.
fn classify(addr: SocketAddr, xml: &str) -> (String, u64, String) {
    let request = format!(
        "POST /classify HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{xml}",
        xml.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    let status = head.lines().next().unwrap_or_default().to_string();
    let epoch = head
        .lines()
        .find_map(|line| line.strip_prefix("X-Model-Epoch: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("every response names its epoch");
    (status, epoch, body.to_string())
}

fn main() {
    // A streaming clusterer over two desks, with a spare cluster (k = 3)
    // for a desk that does not exist yet.
    let bootstrap: Vec<String> = (0..6).map(sports).chain((0..6).map(politics)).collect();
    let refs: Vec<&str> = bootstrap.iter().map(String::as_str).collect();
    let mut opts = StreamOptions::new(3);
    opts.config.params = SimParams::new(0.3, 0.5);
    opts.config.seed = 6;
    opts.policy = RefreshPolicy::manual();
    let mut service = StreamClusterer::new(&refs, opts).expect("bootstrap");

    // Serve the bootstrap model: epoch 1.
    let server = Server::start(
        service.snapshot_model(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind an ephemeral port");
    let addr = server.addr();
    println!(
        "serving {} documents at http://{addr} (epoch {})",
        service.document_count(),
        server.epoch()
    );

    // The epoch-1 model has never seen the technology desk: its articles
    // fall into the trash cluster (id 3).
    let probe = tech(999);
    let (status, epoch, body) = classify(addr, &probe);
    println!("epoch {epoch}: {status} {body}");
    assert!(status.contains("200"), "{status}");
    assert_eq!(epoch, 1);
    assert!(body.contains(r#""trash":true"#), "{body}");

    // The technology desk comes online; the periodic retrain re-clusters
    // everything and hot-swaps the running server. In-flight requests
    // finish on the old model; nothing is dropped.
    for i in 0..6 {
        service.push(&tech(100 + i)).expect("well-formed article");
    }
    let refresh = service.refresh();
    let epoch = server.reload(service.snapshot_model());
    println!(
        "retrained on {} documents in {} rounds -> live swap to epoch {epoch}",
        service.document_count(),
        refresh.rounds
    );

    // The same article now lands in the technology cluster, answered by
    // the very same server process.
    let (status, epoch, body) = classify(addr, &probe);
    println!("epoch {epoch}: {status} {body}");
    assert!(status.contains("200"), "{status}");
    assert_eq!(epoch, 2);
    assert!(body.contains(r#""trash":false"#), "{body}");

    let stats = server.stats();
    println!(
        "served {} requests over {} connections, {} reload(s), 0 drops",
        stats.requests, stats.connections, stats.reloads
    );
    assert_eq!(stats.errors, 0);
    server.shutdown();
}
