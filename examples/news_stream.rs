//! News stream: incremental clustering with drift-triggered refresh.
//!
//! ```text
//! cargo run -p cxk_bench --release --example news_stream
//! ```
//!
//! The paper's introduction motivates the whole framework with "Web news
//! services that need to apply clustering algorithms to articles in XML
//! format … with a frequency of few minutes". This example plays that
//! scenario end to end: a service bootstraps on sports and politics
//! coverage, folds arriving articles into the live clustering in
//! O(article) time, and when a *new* desk (technology) starts publishing,
//! the drift detector notices the trash build-up and pays for one full
//! refresh — after which the new desk has a cluster of its own.

use cxk_stream::{RefreshPolicy, StreamClusterer, StreamOptions};
use cxk_transact::SimParams;

fn article(id: usize, desk: &str, headline: &str, body: &str) -> String {
    format!(
        "<feed><article id=\"a{id}\"><desk>{desk}</desk>\
         <headline>{headline}</headline><body>{body}</body></article></feed>"
    )
}

fn sports(id: usize) -> String {
    let stories = [
        (
            "league final goes to overtime",
            "the championship match entered overtime after a late equalizer goal",
        ),
        (
            "sprinter breaks national record",
            "the national sprint record fell at the athletics championship meeting",
        ),
        (
            "injury sidelines star striker",
            "the striker faces weeks out after a hamstring injury in training",
        ),
        (
            "derby ends in heated draw",
            "the city derby finished level after two disallowed goals and a red card",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "sports", h, b)
}

fn politics(id: usize) -> String {
    let stories = [
        (
            "parliament debates budget bill",
            "the finance committee sent the budget bill to a full parliament vote",
        ),
        (
            "coalition talks stall again",
            "coalition negotiations stalled over ministry allocations and policy terms",
        ),
        (
            "election commission sets date",
            "the commission announced the election date and registration deadlines",
        ),
        (
            "senate passes trade measure",
            "the senate approved the trade measure after amendments on tariffs",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "politics", h, b)
}

fn tech(id: usize) -> String {
    let stories = [
        (
            "chipmaker unveils new processor",
            "the processor doubles cache and adds vector instructions for inference",
        ),
        (
            "open source database hits milestone",
            "the database project shipped replication and columnar storage support",
        ),
        (
            "startup launches satellite network",
            "the constellation promises low latency links for remote regions",
        ),
        (
            "browser patches zero day",
            "the vendor shipped an emergency patch for the exploited sandbox escape",
        ),
    ];
    let (h, b) = stories[id % stories.len()];
    article(id, "technology", h, b)
}

fn main() {
    // Bootstrap: two desks, with one spare cluster provisioned (k = 3) so
    // a future desk can claim it after a refresh.
    let bootstrap: Vec<String> = (0..6).map(sports).chain((0..6).map(politics)).collect();
    let refs: Vec<&str> = bootstrap.iter().map(String::as_str).collect();

    let mut opts = StreamOptions::new(3);
    opts.config.params = SimParams::new(0.3, 0.5);
    opts.config.seed = 6;
    opts.policy = RefreshPolicy::on_drift(0.4, 3);
    let mut service = StreamClusterer::new(&refs, opts).expect("bootstrap");
    println!(
        "bootstrap: {} articles -> {} transactions in 3 clusters (one spare)",
        service.document_count(),
        service.dataset().stats.transactions
    );

    // Tick 1: more of the same desks — cheap assignment, no refresh.
    for i in 6..9 {
        let report = service.push(&sports(i)).expect("well-formed");
        println!(
            "tick: sports article {:>2} -> cluster {:?}  (trash {}, refreshed {})",
            i, report.assignments, report.trash, report.refreshed
        );
    }

    // Tick 2: the technology desk comes online. The frozen representatives
    // know nothing about it, so its articles land in the trash — until the
    // drift policy triggers a refresh.
    for i in 0..5 {
        let report = service.push(&tech(100 + i)).expect("well-formed");
        println!(
            "tick: tech   article {:>2} -> cluster {:?}  (trash {}, refreshed {})",
            100 + i,
            report.assignments,
            report.trash,
            report.refreshed
        );
        if report.refreshed {
            println!("      drift detected -> full refresh performed");
        }
    }

    let trash = service.assignments().iter().filter(|&&a| a == 3).count();
    println!(
        "final: {} documents, {} transactions, {} in trash after {} refresh(es)",
        service.document_count(),
        service.dataset().stats.transactions,
        trash,
        service.stats().refreshes
    );
}
