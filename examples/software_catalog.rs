//! The paper's P2P software-catalog scenario (§1): peers share XML records
//! about software — name, developers, release date, platform, license,
//! reviews, ratings — but each source authors its own markup. One source is
//! *text-centric* (full review text in repeated `review` elements), the
//! other *data-centric* (a `reviews` substructure with per-aspect fields).
//! Hybrid structure/content clustering finds the partial matchings.
//!
//! ```text
//! cargo run -p cxk_bench --release --example software_catalog
//! ```

use cxk_core::{Backend, CxkConfig, EngineBuilder};
use cxk_corpus::partition_equal;
use cxk_eval::f_measure;
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use cxk_util::DetRng;

const CATEGORIES: [(&str, &[&str]); 3] = [
    (
        "databases",
        &[
            "database",
            "query",
            "index",
            "transactions",
            "storage",
            "sql",
            "replication",
        ],
    ),
    (
        "games",
        &[
            "game",
            "graphics",
            "multiplayer",
            "level",
            "physics",
            "rendering",
            "controller",
        ],
    ),
    (
        "editors",
        &[
            "editor",
            "syntax",
            "highlighting",
            "plugins",
            "keybindings",
            "buffers",
            "completion",
        ],
    ),
];

fn words(rng: &mut DetRng, pool: &[&str], n: usize) -> String {
    (0..n)
        .map(|_| *rng.choose(pool))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Text-centric source: flat repeated reviews with embedded ratings.
fn text_centric(rng: &mut DetRng, pool: &[&str]) -> String {
    let reviews: String = (0..2)
        .map(|_| {
            format!(
                "<review>{} rated {} of 10</review>",
                words(rng, pool, 12),
                1 + rng.below(10)
            )
        })
        .collect();
    format!(
        r#"<software><name>{}</name><developer>{}</developer><platform>linux</platform><license>GPL</license>{}</software>"#,
        words(rng, pool, 2),
        words(rng, pool, 1),
        reviews
    )
}

/// Data-centric source: a `reviews` substructure with per-aspect fields.
fn data_centric(rng: &mut DetRng, pool: &[&str]) -> String {
    format!(
        r#"<package title="{}"><vendor>{}</vendor><reviews><entry><positive>{}</positive><negative>{}</negative><rating>{}</rating><recommendation>{}</recommendation></entry></reviews></package>"#,
        words(rng, pool, 2),
        words(rng, pool, 1),
        words(rng, pool, 8),
        words(rng, pool, 6),
        1 + rng.below(10),
        words(rng, pool, 4),
    )
}

fn main() {
    let mut rng = DetRng::seed_from_u64(41);
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    let mut category_labels = Vec::new();
    let mut source_labels = Vec::new();
    for i in 0..90 {
        let cat = i % CATEGORIES.len();
        let pool = CATEGORIES[cat].1;
        let (doc, source) = if i % 2 == 0 {
            (text_centric(&mut rng, pool), 0u32)
        } else {
            (data_centric(&mut rng, pool), 1u32)
        };
        builder.add_xml(&doc).expect("well-formed");
        category_labels.push(cat as u32);
        source_labels.push(source);
    }
    let dataset = builder.finish();
    println!(
        "software catalog: {} records from 2 sources, {} transactions, {} items",
        dataset.stats.documents, dataset.stats.transactions, dataset.stats.items
    );

    let partition = partition_equal(dataset.transactions.len(), 3, 11);

    // Hybrid clustering: 6 classes = 3 categories x 2 source structures.
    let hybrid_truth: Vec<u32> = category_labels
        .iter()
        .zip(&source_labels)
        .map(|(&c, &s)| c * 2 + s)
        .collect();
    let hybrid_truth = cxk_corpus::transaction_labels(&hybrid_truth, &dataset.doc_of);
    let mut config = CxkConfig::new(6);
    config.params = SimParams::new(0.5, 0.55);
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let f_hybrid = f_measure(&hybrid_truth, &outcome.assignments);
    println!("hybrid clustering (f = 0.5):   F = {f_hybrid:.3} over 6 classes");

    // Content-only clustering: 3 categories across both structures.
    let content_truth = cxk_corpus::transaction_labels(&category_labels, &dataset.doc_of);
    let mut config = CxkConfig::new(3);
    config.params = SimParams::new(0.1, 0.55);
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let f_content = f_measure(&content_truth, &outcome.assignments);
    println!("content clustering (f = 0.1):  F = {f_content:.3} over 3 classes");

    // Structure-only clustering: the 2 sources.
    let structure_truth = cxk_corpus::transaction_labels(&source_labels, &dataset.doc_of);
    let mut config = CxkConfig::new(2);
    config.params = SimParams::new(0.9, 0.55);
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let f_structure = f_measure(&structure_truth, &outcome.assignments);
    println!("structure clustering (f = 0.9): F = {f_structure:.3} over 2 classes");
}
