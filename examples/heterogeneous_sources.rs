//! Heterogeneous sources: semantic tag matching across markup dialects.
//!
//! ```text
//! cargo run -p cxk_bench --release --example heterogeneous_sources
//! ```
//!
//! The paper's introduction motivates XML similarity that tolerates
//! *different markup vocabularies for the same logical content*: peers
//! sharing software descriptions each author their own tags. This example
//! builds such a catalog — two sources describing games and editors, one
//! using `application/developer/review`, the other `software/vendor/
//! comments` — and clusters it by structure and content twice: with the
//! paper's exact tag matching, and with a synonym thesaurus
//! (`cxk_semantic`). Exact matching keeps the two sources apart; the
//! thesaurus groups by what the records *mean*.

use cxk_core::{CxkConfig, EngineBuilder};
use cxk_eval::f_measure;
use cxk_semantic::Thesaurus;
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

/// (xml, topic label) — topic 0 = games, topic 1 = editors.
fn catalog() -> Vec<(String, u32)> {
    // (name, developer, genre, review, topic)
    let records = [
        (
            "Nebula Racer",
            "A. Vance",
            "arcade racing game",
            "fast racing game with split screen multiplayer races",
            0,
        ),
        (
            "Dungeon Forge",
            "B. Holt",
            "roguelike dungeon game",
            "dungeon crawler game with procedural levels and loot",
            0,
        ),
        (
            "TextSmith",
            "C. Reyes",
            "programmer text editor",
            "text editor with syntax highlighting and code folding",
            1,
        ),
        (
            "MarkPad",
            "D. Osei",
            "markdown text editor",
            "markdown editor with live preview and editing themes",
            1,
        ),
        (
            "Star Drift",
            "E. Lindqvist",
            "space racing game",
            "racing game with online multiplayer seasons and drift races",
            0,
        ),
        (
            "Cavern Quest",
            "F. Moreau",
            "dungeon exploration game",
            "dungeon exploration game with handcrafted levels and secrets",
            0,
        ),
        (
            "CodeCarver",
            "G. Tanaka",
            "fast code editor",
            "code editor with syntax highlighting and plugin support",
            1,
        ),
        (
            "NotePress",
            "H. Abara",
            "markdown note editor",
            "markdown editor with preview pane and note linking",
            1,
        ),
    ];

    let mut docs = Vec::new();
    for (i, (name, dev, genre, review, topic)) in records.iter().enumerate() {
        // The first four records come from source A (text-centric markup),
        // the rest from source B, which authors its own tag vocabulary.
        let xml = if i < 4 {
            format!(
                "<catalog><application><name>{name}</name>\
                 <developer>{dev}</developer><genre>{genre}</genre>\
                 <review>{review}</review></application></catalog>"
            )
        } else {
            format!(
                "<catalog><software><title>{name}</title>\
                 <vendor>{dev}</vendor><category>{genre}</category>\
                 <comments>{review}</comments></software></catalog>"
            )
        };
        docs.push((xml, *topic));
    }
    docs
}

fn main() {
    let docs = catalog();
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for (xml, _) in &docs {
        builder.add_xml(xml).expect("well-formed XML");
    }
    let mut dataset = builder.finish();
    let labels: Vec<u32> = docs.iter().map(|(_, t)| *t).collect();
    // One transaction per document here (single record, single review).
    assert_eq!(dataset.transactions.len(), labels.len());

    let mut config = CxkConfig::new(2);
    config.seed = 2;
    config.params = SimParams::new(0.5, 0.55);

    let exact = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let exact_f = f_measure(&labels, &exact.assignments);
    println!(
        "exact tag matching:    F = {exact_f:.3}   assignments = {:?}",
        exact.assignments
    );

    // The knowledge base a catalog integrator would write: one ring per
    // logical field across the two sources.
    let mut thesaurus = Thesaurus::new();
    thesaurus.add_ring(&["application", "software"]);
    thesaurus.add_ring(&["name", "title"]);
    thesaurus.add_ring(&["developer", "vendor"]);
    thesaurus.add_ring(&["genre", "category"]);
    thesaurus.add_ring(&["review", "comments"]);
    let matcher = thesaurus.matcher(&dataset.labels);
    dataset.rebuild_tag_sim(&matcher);

    let semantic = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let semantic_f = f_measure(&labels, &semantic.assignments);
    println!(
        "thesaurus matching:    F = {semantic_f:.3}   assignments = {:?}",
        semantic.assignments
    );

    println!();
    if semantic_f >= exact_f {
        println!(
            "semantic matching recovered the topical grouping across markup \
             dialects (+{:.3} F)",
            semantic_f - exact_f
        );
    } else {
        println!("unexpected: exact matching won on this tiny catalog");
    }
}
