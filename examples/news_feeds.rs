//! News-feed clustering — the paper's motivating high-demand scenario (§1):
//! "Web news services that need to apply clustering algorithms to articles
//! in XML format spanning over thousands of news sources with a frequency
//! of few minutes", where the goal is grouping articles by *topic*
//! regardless of the feed's markup dialect.
//!
//! ```text
//! cargo run -p cxk_bench --release --example news_feeds
//! ```
//!
//! Articles arrive in two dialects (RSS-like `item` vs. Atom-like `entry`)
//! over three topics; content-driven clustering (`f ∈ [0, 0.3]`) must
//! recover the topics across dialects.

use cxk_core::{Backend, CxkConfig, EngineBuilder};
use cxk_corpus::partition_equal;
use cxk_eval::f_measure;
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use cxk_util::DetRng;

const TOPICS: [(&str, &[&str]); 3] = [
    (
        "markets",
        &[
            "stocks",
            "inflation",
            "earnings",
            "shares",
            "investors",
            "trading",
            "economy",
            "rates",
        ],
    ),
    (
        "football",
        &[
            "match", "goal", "league", "striker", "transfer", "penalty", "keeper", "derby",
        ],
    ),
    (
        "weather",
        &[
            "storm",
            "rainfall",
            "forecast",
            "flooding",
            "temperatures",
            "heatwave",
            "winds",
            "snowfall",
        ],
    ),
];

fn sentence(rng: &mut DetRng, topic: &[&str], n: usize) -> String {
    (0..n)
        .map(|_| *rng.choose(topic))
        .collect::<Vec<_>>()
        .join(" ")
}

fn rss_item(rng: &mut DetRng, topic: &[&str]) -> String {
    format!(
        r#"<rss><channel><item><title>{}</title><description>{}</description><pubDate>2009-0{}-1{}</pubDate></item></channel></rss>"#,
        sentence(rng, topic, 6),
        sentence(rng, topic, 16),
        1 + rng.below(9),
        rng.below(9),
    )
}

fn atom_entry(rng: &mut DetRng, topic: &[&str]) -> String {
    format!(
        r#"<feed><entry><headline>{}</headline><summary>{}</summary><content>{}</content></entry></feed>"#,
        sentence(rng, topic, 6),
        sentence(rng, topic, 10),
        sentence(rng, topic, 14),
    )
}

fn main() {
    let mut rng = DetRng::seed_from_u64(2009);
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    let mut doc_labels: Vec<u32> = Vec::new();
    for i in 0..120 {
        let topic_idx = i % TOPICS.len();
        let topic = TOPICS[topic_idx].1;
        let doc = if rng.chance(0.5) {
            rss_item(&mut rng, topic)
        } else {
            atom_entry(&mut rng, topic)
        };
        builder.add_xml(&doc).expect("well-formed");
        doc_labels.push(topic_idx as u32);
    }
    let dataset = builder.finish();
    let labels = cxk_corpus::transaction_labels(&doc_labels, &dataset.doc_of);

    println!(
        "news corpus: {} articles in two dialects, {} transactions",
        dataset.stats.documents, dataset.stats.transactions
    );

    // Content-driven clustering distributed over 4 peers (four ingest
    // nodes of the news service).
    let mut config = CxkConfig::new(3);
    config.params = SimParams::new(0.1, 0.5); // f in the content band
    let partition = partition_equal(dataset.transactions.len(), 4, 7);
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");

    let f = f_measure(&labels, &outcome.assignments);
    println!(
        "4 peers: rounds = {}, F-measure = {f:.3}, trash = {}, traffic = {} bytes",
        outcome.rounds,
        outcome.trash_count(),
        outcome.total_bytes
    );
    assert!(f > 0.6, "topic recovery should succeed across dialects");

    // Show that structure-driven clustering instead separates the dialects.
    let mut config = CxkConfig::new(2);
    config.params = SimParams::new(0.9, 0.5); // f in the structure band
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let dialects: Vec<u32> = (0..dataset.transactions.len())
        .map(|t| {
            let item = &dataset.items[dataset.transactions[t].items()[0].index()];
            let path = dataset.paths.resolve(item.path);
            u32::from(dataset.labels.resolve(path[0]) == "feed")
        })
        .collect();
    let f_structure = f_measure(&dialects, &outcome.assignments);
    println!("structure-driven (f = 0.9): dialect F-measure = {f_structure:.3}");
}
