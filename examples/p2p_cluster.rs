//! Full P2P run on the synthetic DBLP corpus with **real peer threads** and
//! message passing, comparing the centralized baseline against a
//! collaborative network (the experiment of the paper's Fig. 1 overview).
//!
//! ```text
//! cargo run -p cxk_bench --release --example p2p_cluster [m]
//! ```

use cxk_core::{Backend, CxkConfig, EngineBuilder};
use cxk_corpus::dblp::{generate, DblpConfig};
use cxk_corpus::{partition_equal, transaction_labels, ClusteringSetting};
use cxk_eval::f_measure;
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let corpus = generate(&DblpConfig {
        documents: 160,
        seed: 0xD0C,
        dialects: 1,
    });
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for doc in &corpus.documents {
        builder.add_xml(doc).expect("generated XML is well-formed");
    }
    let dataset = builder.finish();
    let (doc_labels, k) = corpus.labels_for(ClusteringSetting::Hybrid);
    let labels = transaction_labels(doc_labels, &dataset.doc_of);
    println!(
        "DBLP-like corpus: {} docs -> {} transactions, clustering into k = {k}",
        corpus.len(),
        dataset.stats.transactions
    );

    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(0.5, 0.8);

    let central = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let f_central = f_measure(&labels, &central.assignments);
    println!(
        "centralized:      rounds = {}, F = {f_central:.3}, simulated {:.2} s",
        central.rounds, central.simulated_seconds
    );

    let partition = partition_equal(dataset.transactions.len(), m, 99);
    let outcome = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::ThreadedP2p { peers: m })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let f_dist = f_measure(&labels, &outcome.assignments);
    println!(
        "{m} peer threads: rounds = {}, F = {f_dist:.3}, wall {:.2} s, \
         traffic = {} KiB in {} messages",
        outcome.rounds,
        outcome.simulated_seconds,
        outcome.total_bytes / 1024,
        outcome.total_messages
    );
    println!(
        "accuracy retained: {:.1}% of centralized",
        100.0 * f_dist / f_central.max(1e-9)
    );
}
