//! Quickstart: cluster a handful of XML documents by structure and content
//! through the typed Engine API, then snapshot the result as a servable
//! model.
//!
//! ```text
//! cargo run -p cxk_bench --release --example quickstart
//! ```
//!
//! The pipeline: XML text → tree tuples → transactions →
//! `EngineBuilder::build()` → `Engine::fit()` → clusters (+ a
//! `TrainedModel` ready for `cxk serve`).

use cxk_core::{Backend, EngineBuilder};
use cxk_transact::{BuildOptions, DatasetBuilder};

fn main() {
    let documents = [
        // Two conference papers on mining (same markup, same topic).
        r#"<dblp><inproceedings key="conf/kdd/1"><author>M.J. Zaki</author><title>Efficiently mining frequent trees in a forest</title><year>2002</year><booktitle>KDD</booktitle></inproceedings></dblp>"#,
        r#"<dblp><inproceedings key="conf/kdd/2"><author>C.C. Aggarwal</author><title>XRules an effective structural classifier for XML mining</title><year>2003</year><booktitle>KDD</booktitle></inproceedings></dblp>"#,
        // Two journal articles on networking (different markup, different topic).
        r#"<dblp><article key="journals/ton/1"><author>V. Jacobson</author><title>Congestion avoidance and control in packet networks</title><year>1998</year><journal>Transactions on Networking</journal></article></dblp>"#,
        r#"<dblp><article key="journals/ton/2"><author>R. Perlman</author><title>Routing protocols for resilient networks</title><year>1999</year><journal>Transactions on Networking</journal></article></dblp>"#,
    ];

    // 1. Preprocess: parse, extract tree tuples, build transactions with
    //    ttf.itf-weighted content vectors.
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for doc in &documents {
        builder.add_xml(doc).expect("well-formed XML");
    }
    let dataset = builder.finish();
    println!(
        "dataset: {} documents, {} transactions, {} items, |V| = {}",
        dataset.stats.documents,
        dataset.stats.transactions,
        dataset.stats.items,
        dataset.stats.vocabulary
    );

    // 2. Configure the engine: k = 2 clusters, hybrid structure/content
    //    similarity (f = 0.5, γ = 0.3), centralized backend. `build()`
    //    validates every axis and returns a typed error instead of
    //    panicking — swap the backend for `Backend::SimulatedP2p` or
    //    `Backend::ThreadedP2p` to distribute the same run.
    let engine = EngineBuilder::new(2)
        .similarity(0.5, 0.3)
        .seed(1)
        .backend(Backend::Centralized)
        .build()
        .expect("a valid configuration");
    let fit = engine.fit(&dataset).expect("training runs");

    // 3. Report.
    println!(
        "converged = {} after {} rounds; simulated time {:.3} ms",
        fit.converged,
        fit.rounds,
        fit.simulated_seconds * 1e3
    );
    for cluster in 0..=fit.k {
        let members: Vec<usize> = fit
            .assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a as usize == cluster)
            .map(|(t, _)| t)
            .collect();
        if members.is_empty() {
            continue;
        }
        let name = if cluster == fit.k {
            "trash".to_string()
        } else {
            format!("C{cluster}")
        };
        println!("cluster {name}:");
        for t in members {
            let doc = dataset.doc_of[t] as usize;
            let title_item = dataset.transactions[t]
                .items()
                .iter()
                .map(|id| &dataset.items[id.index()])
                .find(|item| item.raw.len() > 20)
                .map(|item| item.raw.as_ref())
                .unwrap_or("<no title>");
            println!("  tx{t} (doc {doc}): {title_item}");
        }
    }

    // 4. The same fit flows straight into a servable snapshot — this is
    //    what `cxk train` writes and `cxk serve` loads.
    let model = fit.into_model(&dataset, BuildOptions::default());
    let bytes = cxk_core::save_model(&model);
    println!(
        "servable model: {} representatives, {} snapshot bytes",
        model.k(),
        bytes.len()
    );
}
