//! Churn recovery: the collaborative protocol surviving peer departures.
//!
//! ```text
//! cargo run -p cxk_bench --release --example churn_recovery
//! ```
//!
//! Six peers cluster a bibliographic collection collaboratively. At the
//! start of round 2, two peers drop off the network; one of them owned
//! cluster ids, so ownership is recomputed over the survivors and the run
//! reconverges. One departed peer later rejoins and its stale data is
//! folded back in. The example prints coverage and per-phase quality —
//! the paper's §1.1 reliability argument, executed.

use cxk_core::{Backend, ChurnEvent, ChurnSchedule, CxkConfig, EngineBuilder};
use cxk_corpus::dblp::{generate, DblpConfig};
use cxk_corpus::{partition_equal, transaction_labels, ClusteringSetting};
use cxk_eval::f_measure;
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};

fn main() {
    let corpus = generate(&DblpConfig {
        documents: 160,
        seed: 0xC0DE,
        dialects: 1,
    });
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for doc in &corpus.documents {
        builder.add_xml(doc).expect("well-formed corpus");
    }
    let dataset = builder.finish();
    let (doc_labels, k) = corpus.labels_for(ClusteringSetting::Structure);
    let labels = transaction_labels(doc_labels, &dataset.doc_of);

    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(0.8, 0.6);
    config.seed = 9;
    let partition = partition_equal(dataset.stats.transactions, 6, 4);

    // Baseline: the static six-peer network.
    let stable = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::SimulatedP2p { peers: 6 })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    println!(
        "static network:   m=6, rounds={}, F = {:.3}",
        stable.rounds,
        f_measure(&labels, &stable.assignments)
    );

    // Peers 4 and 5 leave at round 2; peer 4 rejoins at round 4.
    let schedule = ChurnSchedule {
        events: vec![
            ChurnEvent::Leave { round: 2, peer: 4 },
            ChurnEvent::Leave { round: 2, peer: 5 },
            ChurnEvent::Rejoin { round: 4, peer: 4 },
        ],
    };
    let churned = EngineBuilder::from_cxk_config(&config)
        .backend(Backend::Churn { peers: 6, schedule })
        .partition(partition.clone())
        .build()
        .expect("valid configuration")
        .fit(&dataset)
        .expect("training runs");
    let coverage_mask = churned
        .covered
        .clone()
        .expect("churn backend reports coverage");

    let covered: Vec<(u32, u32)> = labels
        .iter()
        .zip(&churned.assignments)
        .zip(&coverage_mask)
        .filter(|(_, &c)| c)
        .map(|((&l, &a), _)| (l, a))
        .collect();
    let (cl, ca): (Vec<u32>, Vec<u32>) = covered.into_iter().unzip();

    println!(
        "churned network:  2 leave @r2, 1 rejoins @r4 -> rounds={}, converged={}",
        churned.rounds, churned.converged
    );
    println!(
        "                  final alive {}/6, coverage {:.1}%, F(covered) = {:.3}",
        churned.final_alive.unwrap_or(0),
        churned.coverage() * 100.0,
        f_measure(&cl, &ca)
    );
    println!(
        "                  transactions lost with the still-absent peer: {}",
        coverage_mask.iter().filter(|&&c| !c).count()
    );
}
