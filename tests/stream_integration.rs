//! Streaming-layer integration at corpus scale: approximation quality,
//! refresh equivalence, and drift behaviour on generated DBLP data.

use cxk_corpus::dblp::{generate, DblpConfig};
use cxk_corpus::{transaction_labels, ClusteringSetting};
use cxk_eval::f_measure;
use cxk_stream::{RefreshPolicy, StreamClusterer, StreamOptions};
use cxk_transact::SimParams;

fn dblp_docs(documents: usize, seed: u64) -> (Vec<String>, Vec<u32>, usize) {
    let corpus = generate(&DblpConfig {
        documents,
        seed,
        dialects: 1,
    });
    let (labels, k) = corpus.labels_for(ClusteringSetting::Hybrid);
    (corpus.documents.clone(), labels.to_vec(), k)
}

fn options(k: usize, policy: RefreshPolicy) -> StreamOptions {
    let mut opts = StreamOptions::new(k);
    opts.config.params = SimParams::new(0.5, 0.6);
    opts.config.seed = 17;
    opts.policy = policy;
    opts
}

#[test]
fn streamed_accuracy_tracks_batch_accuracy() {
    let (docs, doc_labels, k) = dblp_docs(120, 31);
    let split = 60;
    let bootstrap: Vec<&str> = docs[..split].iter().map(String::as_str).collect();

    let mut s =
        StreamClusterer::new(&bootstrap, options(k, RefreshPolicy::manual())).expect("bootstrap");
    for doc in &docs[split..] {
        s.push(doc).expect("well-formed");
    }
    let labels = transaction_labels(&doc_labels, &s.dataset().doc_of);
    let streamed_f = f_measure(&labels, s.assignments());

    // The same documents, batch-clustered.
    s.refresh();
    let batch_f = f_measure(&labels, s.assignments());

    // Frozen representatives cost some accuracy but must stay in the same
    // band (the arrivals come from the same distribution).
    assert!(
        streamed_f > batch_f - 0.2,
        "streamed {streamed_f:.3} fell too far below batch {batch_f:.3}"
    );
}

#[test]
fn refresh_counts_and_counters_stay_consistent() {
    let (docs, _, k) = dblp_docs(60, 32);
    let bootstrap: Vec<&str> = docs[..30].iter().map(String::as_str).collect();
    let mut s =
        StreamClusterer::new(&bootstrap, options(k, RefreshPolicy::every(10))).expect("bootstrap");

    let mut auto_refreshes = 0;
    for doc in &docs[30..] {
        let report = s.push(doc).expect("well-formed");
        auto_refreshes += usize::from(report.refreshed);
        assert_eq!(s.assignments().len(), s.dataset().stats.transactions);
        assert!(s.stats().documents_since_refresh < 10);
    }
    assert_eq!(auto_refreshes, 3, "30 arrivals / refresh-every-10");
    assert_eq!(s.stats().refreshes, 3);
    assert_eq!(s.document_count(), 60);
}

#[test]
fn trash_fraction_decreases_after_drift_refresh() {
    // Bootstrap on two structural record types only; stream the other two.
    let (docs, _, _) = dblp_docs(80, 33);
    let bootstrap: Vec<&str> = docs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 < 2)
        .map(|(_, d)| d.as_str())
        .collect();
    let arrivals: Vec<&str> = docs
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 >= 2)
        .map(|(_, d)| d.as_str())
        .collect();

    let mut s =
        StreamClusterer::new(&bootstrap, options(8, RefreshPolicy::manual())).expect("bootstrap");
    for doc in &arrivals {
        s.push(doc).expect("well-formed");
    }
    let trash_before = s.assignments().iter().filter(|&&a| a == 8).count();
    s.refresh();
    let trash_after = s.assignments().iter().filter(|&&a| a == 8).count();
    assert!(
        trash_after <= trash_before,
        "refresh must not grow the trash: {trash_before} -> {trash_after}"
    );
}

#[test]
fn push_cost_does_not_grow_with_history() {
    // The push path must stay O(document), not O(corpus): fold 40 arrivals
    // and compare the first and last quarter's wall time. Generous factor
    // to stay robust on noisy CI machines.
    let (docs, _, k) = dblp_docs(140, 34);
    let bootstrap: Vec<&str> = docs[..100].iter().map(String::as_str).collect();
    let mut s =
        StreamClusterer::new(&bootstrap, options(k, RefreshPolicy::manual())).expect("bootstrap");

    let t0 = std::time::Instant::now();
    for doc in &docs[100..110] {
        s.push(doc).unwrap();
    }
    let first = t0.elapsed();
    for doc in &docs[110..130] {
        s.push(doc).unwrap();
    }
    let t1 = std::time::Instant::now();
    for doc in &docs[130..140] {
        s.push(doc).unwrap();
    }
    let last = t1.elapsed();
    assert!(
        last < first * 8,
        "push latency grew with history: {first:?} -> {last:?}"
    );
}
