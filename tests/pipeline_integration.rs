//! End-to-end pipeline integration: synthetic corpus → XML parsing → tree
//! tuples → transactions → clustering → F-measure, across all four corpora.

use cxk_bench::{prepare, CorpusKind};
use cxk_core::{Backend, CxkConfig, EngineBuilder};
use cxk_corpus::{partition_equal, partition_unequal};
use cxk_eval::f_measure;
use cxk_p2p::CostModel;
use cxk_transact::SimParams;

/// Engine-backed equivalents of the old free functions.
fn fit_centralized(ds: &cxk_transact::Dataset, config: &CxkConfig) -> cxk_core::ClusteringOutcome {
    EngineBuilder::from_cxk_config(config)
        .build()
        .expect("valid test config")
        .fit(ds)
        .expect("fit succeeds")
        .into_outcome()
}

fn fit_collaborative(
    ds: &cxk_transact::Dataset,
    partition: &[Vec<usize>],
    config: &CxkConfig,
) -> cxk_core::ClusteringOutcome {
    EngineBuilder::from_cxk_config(config)
        .backend(Backend::SimulatedP2p {
            peers: partition.len(),
        })
        .partition(partition.to_vec())
        .build()
        .expect("valid test config")
        .fit(ds)
        .expect("fit succeeds")
        .into_outcome()
}

fn config(k: usize, f: f64, gamma: f64) -> CxkConfig {
    CxkConfig {
        k,
        params: SimParams::new(f, gamma),
        max_rounds: 15,
        max_inner: 10,
        seed: 3,
        cost: CostModel::default(),
        weighted_merge: true,
    }
}

#[test]
fn all_corpora_build_datasets() {
    for kind in CorpusKind::all() {
        let p = prepare(kind, 0.06, 11);
        assert!(
            p.dataset.stats.transactions > 0,
            "{} produced no transactions",
            kind.name()
        );
        assert!(p.dataset.stats.items > 0);
        assert!(p.dataset.stats.vocabulary > 0);
        assert_eq!(p.content_labels.len(), p.dataset.stats.transactions);
        // Tag-path table covers every item.
        for item in &p.dataset.items {
            assert!(
                p.dataset.tag_sim.rank_of(item.tag_path).is_some(),
                "unregistered tag path in {}",
                kind.name()
            );
        }
    }
}

#[test]
fn dblp_structure_clustering_is_accurate_centralized() {
    let p = prepare(CorpusKind::Dblp, 0.25, 12);
    let outcome = fit_centralized(&p.dataset, &config(p.k_structure, 0.8, 0.6));
    let f = f_measure(&p.structure_labels, &outcome.assignments);
    assert!(f > 0.8, "structure-driven F = {f}");
}

#[test]
fn dblp_content_clustering_beats_chance() {
    let p = prepare(CorpusKind::Dblp, 0.25, 13);
    let outcome = fit_centralized(&p.dataset, &config(p.k_content, 0.2, 0.45));
    let f = f_measure(&p.content_labels, &outcome.assignments);
    // Random assignment over 6 classes scores ~0.27 on this corpus.
    assert!(f > 0.4, "content-driven F = {f}");
}

#[test]
fn wikipedia_content_clustering_works() {
    let p = prepare(CorpusKind::Wikipedia, 0.2, 14);
    let outcome = fit_centralized(&p.dataset, &config(p.k_content, 0.1, 0.5));
    let f = f_measure(&p.content_labels, &outcome.assignments);
    assert!(f > 0.5, "wikipedia content F = {f}");
}

#[test]
fn ieee_structure_clustering_separates_templates() {
    // γ = 0.7 is the calibrated threshold for IEEE structure clustering
    // (below it, cross-template paragraph paths γ-match and blur the two
    // templates).
    let p = prepare(CorpusKind::Ieee, 0.5, 15);
    let outcome = fit_centralized(&p.dataset, &config(p.k_structure, 0.9, 0.7));
    let f = f_measure(&p.structure_labels, &outcome.assignments);
    assert!(f > 0.75, "ieee structure F = {f}");
}

#[test]
fn distributed_assignment_is_total_on_every_corpus() {
    for kind in CorpusKind::all() {
        let p = prepare(kind, 0.06, 16);
        let n = p.dataset.stats.transactions;
        let partition = partition_equal(n, 3, 1);
        let outcome = fit_collaborative(&p.dataset, &partition, &config(4, 0.5, 0.6));
        assert_eq!(outcome.assignments.len(), n);
        assert_eq!(outcome.cluster_sizes().iter().sum::<usize>(), n);
    }
}

#[test]
fn unequal_partition_runs_and_scores() {
    let p = prepare(CorpusKind::Dblp, 0.2, 17);
    let n = p.dataset.stats.transactions;
    let outcome = fit_collaborative(
        &p.dataset,
        &partition_unequal(n, 4, 2),
        &config(p.k_structure, 0.8, 0.6),
    );
    let f = f_measure(&p.structure_labels, &outcome.assignments);
    assert!(f > 0.5, "unequal-partition F = {f}");
}

#[test]
fn shakespeare_long_documents_round_trip() {
    let p = prepare(CorpusKind::Shakespeare, 0.5, 18);
    // 12 plays, many transactions each.
    assert_eq!(p.dataset.stats.documents, 12);
    assert!(
        p.dataset.stats.transactions > 20 * p.dataset.stats.documents,
        "plays must be long: {} transactions",
        p.dataset.stats.transactions
    );
    let outcome = fit_centralized(&p.dataset, &config(p.k_structure, 0.9, 0.55));
    let f = f_measure(&p.structure_labels, &outcome.assignments);
    assert!(f > 0.5, "shakespeare structure F = {f}");
}

#[test]
fn simulated_time_drops_from_centralized_to_small_network() {
    // The headline claim of Fig. 7: a few collaborating peers beat m = 1.
    let p = prepare(CorpusKind::Dblp, 0.4, 19);
    let n = p.dataset.stats.transactions;
    let cfg = config(p.k_hybrid, 0.5, 0.6);
    let central = fit_centralized(&p.dataset, &cfg);
    let distributed = fit_collaborative(&p.dataset, &partition_equal(n, 5, 3), &cfg);
    assert!(
        distributed.simulated_seconds < central.simulated_seconds,
        "distributed {:.4}s !< centralized {:.4}s",
        distributed.simulated_seconds,
        central.simulated_seconds
    );
}

#[test]
fn persisted_dataset_clusters_identically() {
    // Save → load → cluster must give exactly the same partition: the
    // persistence format round-trips vectors bit-exactly and the
    // similarity table is derived state.
    let p = prepare(CorpusKind::Dblp, 0.15, 27);
    let text = cxk_transact::save_dataset(&p.dataset);
    let reloaded = cxk_transact::load_dataset(&text).expect("reload");
    let cfg = config(p.k_structure, 0.8, 0.6);
    let original = fit_centralized(&p.dataset, &cfg);
    let reran = fit_centralized(&reloaded, &cfg);
    assert_eq!(original.assignments, reran.assignments);
    assert_eq!(original.rounds, reran.rounds);
}

#[test]
fn unweighted_merge_changes_only_the_combination() {
    let p = prepare(CorpusKind::Dblp, 0.2, 28);
    let n = p.dataset.stats.transactions;
    let partition = partition_equal(n, 4, 6);
    let mut cfg = config(p.k_hybrid, 0.5, 0.6);
    let weighted = fit_collaborative(&p.dataset, &partition, &cfg);
    cfg.weighted_merge = false;
    let unweighted = fit_collaborative(&p.dataset, &partition, &cfg);
    // Both produce total assignments; the ablation flag must not break the
    // protocol (same round bounds, full coverage).
    assert_eq!(weighted.assignments.len(), n);
    assert_eq!(unweighted.assignments.len(), n);
    assert_eq!(unweighted.cluster_sizes().iter().sum::<usize>(), n);
}

#[test]
fn transaction_counts_scale_with_documents() {
    // Tree-tuple decomposition must yield more transactions than documents
    // on corpora with repeated sibling groups.
    for (kind, min_ratio) in [
        (CorpusKind::Dblp, 1.2),
        (CorpusKind::Ieee, 8.0),
        (CorpusKind::Wikipedia, 5.0),
    ] {
        let p = prepare(kind, 0.1, 29);
        let ratio = p.dataset.stats.transactions as f64 / p.dataset.stats.documents as f64;
        assert!(
            ratio > min_ratio,
            "{}: ratio {ratio} too small",
            kind.name()
        );
    }
}
