//! Semantic-matching integration: heterogeneous markup dialects, the
//! synonym/taxonomy matchers, and their effect on end-to-end clustering.

use cxk_bench::data::prepare_dblp_dialects;
use cxk_bench::experiments::{dialect_thesaurus, semantic_ablation, ExperimentOptions};
use cxk_core::{CxkConfig, EngineBuilder};
use cxk_eval::f_measure;
use cxk_semantic::Taxonomy;
use cxk_transact::{ExactMatch, SimParams};

/// Engine-backed equivalents of the old free functions.
fn fit_centralized(ds: &cxk_transact::Dataset, config: &CxkConfig) -> cxk_core::ClusteringOutcome {
    EngineBuilder::from_cxk_config(config)
        .build()
        .expect("valid test config")
        .fit(ds)
        .expect("fit succeeds")
        .into_outcome()
}

fn structure_config(k: usize, gamma: f64) -> CxkConfig {
    let mut config = CxkConfig::new(k);
    config.params = SimParams::new(0.9, gamma);
    config.seed = 11;
    config.max_rounds = 15;
    config
}

#[test]
fn thesaurus_recovers_structure_classes_across_dialects() {
    let mut prepared = prepare_dblp_dialects(0.25, 42, 3);
    let labels = prepared.structure_labels.clone();
    let config = structure_config(prepared.k_structure, 0.6);

    let exact = fit_centralized(&prepared.dataset, &config);
    let exact_f = f_measure(&labels, &exact.assignments);

    let matcher = dialect_thesaurus().matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&matcher);
    let semantic = fit_centralized(&prepared.dataset, &config);
    let semantic_f = f_measure(&labels, &semantic.assignments);

    assert!(
        semantic_f > exact_f + 0.1,
        "thesaurus must recover dialect-split classes: exact {exact_f:.3} vs semantic {semantic_f:.3}"
    );
    assert!(semantic_f > 0.8, "semantic F = {semantic_f:.3}");
}

#[test]
fn single_dialect_is_matcher_invariant() {
    let mut prepared = prepare_dblp_dialects(0.15, 7, 1);
    let config = structure_config(prepared.k_structure, 0.6);

    let exact = fit_centralized(&prepared.dataset, &config);
    let matcher = dialect_thesaurus().matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&matcher);
    let semantic = fit_centralized(&prepared.dataset, &config);

    // Homogeneous markup: no synonym pair ever co-occurs, so the enriched
    // table equals the exact one and the clustering is identical.
    assert_eq!(exact.assignments, semantic.assignments);
}

#[test]
fn rebuild_tag_sim_round_trips() {
    let mut prepared = prepare_dblp_dialects(0.1, 3, 2);
    let config = structure_config(prepared.k_structure, 0.6);
    let before = fit_centralized(&prepared.dataset, &config);

    let matcher = dialect_thesaurus().matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&matcher);
    prepared.dataset.rebuild_tag_sim(&ExactMatch);
    let after = fit_centralized(&prepared.dataset, &config);
    assert_eq!(before.assignments, after.assignments);
}

#[test]
fn semantic_ablation_harness_shows_the_gap() {
    let mut prepared = prepare_dblp_dialects(0.15, 21, 3);
    let opts = ExperimentOptions {
        gamma: 0.6,
        runs: 1,
        ..Default::default()
    };
    let rows = semantic_ablation(&mut prepared, 3, &[1, 3], &opts);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(
            row.thesaurus_f >= row.exact_f,
            "m = {}: thesaurus {:.3} < exact {:.3}",
            row.m,
            row.thesaurus_f,
            row.exact_f
        );
    }
}

/// A bibliographic is-a hierarchy built the way a knowledge engineer
/// would for *this* task: class-discriminating fields (the record types,
/// `journal` vs. `booktitle`, …) sit in separate branches so cross-field
/// Wu–Palmer relatedness (1/3 through the root) falls below the 0.5 floor
/// and counts as no match; dialect variants of one field share a concept
/// (Δ = 1); and the only graded sibling pair is `volume`/`number` (2/3) —
/// both article-only, so grading them can only reinforce the class.
fn bibliographic_taxonomy(floor: f64) -> Taxonomy {
    let mut t = Taxonomy::with_root("record-field").with_floor(floor);
    let issue = t.add_concept("issue-locator", t.root());
    for ring in cxk_corpus::dialect::synonym_rings() {
        let concept = match ring[0] {
            "volume" | "number" => t.add_concept(ring[0], issue),
            canonical => {
                let branch = t.add_concept(&format!("{canonical}-branch"), t.root());
                t.add_concept(canonical, branch)
            }
        };
        for tag in ring {
            t.assign(tag, concept);
        }
    }
    t
}

#[test]
fn taxonomy_matcher_also_lifts_heterogeneous_accuracy() {
    let mut prepared = prepare_dblp_dialects(0.2, 13, 2);
    let labels = prepared.structure_labels.clone();
    let config = structure_config(prepared.k_structure, 0.6);

    let exact = fit_centralized(&prepared.dataset, &config);
    let exact_f = f_measure(&labels, &exact.assignments);

    let matcher = bibliographic_taxonomy(0.5).matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&matcher);
    let semantic = fit_centralized(&prepared.dataset, &config);
    let semantic_f = f_measure(&labels, &semantic.assignments);

    assert!(
        semantic_f > exact_f,
        "taxonomy should help: exact {exact_f:.3} vs taxonomy {semantic_f:.3}"
    );
}

#[test]
fn unfloored_taxonomy_overgrades_and_underperforms() {
    // Without the floor every pair of assigned tags scores ≥ 1/3 through
    // the root, blurring exactly the fields that separate the structural
    // classes. This is the over-grading hazard `Taxonomy::with_floor`
    // exists to prevent; keep it measurable.
    let mut prepared = prepare_dblp_dialects(0.2, 13, 2);
    let labels = prepared.structure_labels.clone();
    let config = structure_config(prepared.k_structure, 0.6);

    let floored = bibliographic_taxonomy(0.5).matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&floored);
    let with_floor = fit_centralized(&prepared.dataset, &config);
    let floored_f = f_measure(&labels, &with_floor.assignments);

    let unfloored = bibliographic_taxonomy(0.0).matcher(&prepared.dataset.labels);
    prepared.dataset.rebuild_tag_sim(&unfloored);
    let without_floor = fit_centralized(&prepared.dataset, &config);
    let unfloored_f = f_measure(&labels, &without_floor.assignments);

    assert!(
        floored_f > unfloored_f,
        "floor should protect discrimination: floored {floored_f:.3} vs unfloored {unfloored_f:.3}"
    );
}
