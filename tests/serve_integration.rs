//! End-to-end test of the serving pipeline (ISSUE 2's acceptance
//! criterion): train on `samples/`, snapshot to disk, reload, classify
//! held-out documents — indexed assignments must match brute-force
//! `sim_gamma_j` assignments exactly — and a live HTTP server round-trip
//! over localhost must return the same cluster ids.

use cxk_core::{load_model, save_model, save_model_file, CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::{Classifier, ServeOptions, Server};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn samples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples")
}

fn read_sample(name: &str) -> String {
    std::fs::read_to_string(samples_dir().join(name)).expect("sample exists")
}

/// Trains on ten of the twelve samples, holding out one per topic.
fn train_held_out() -> (TrainedModel, Vec<(String, String)>) {
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for i in 1..=5 {
        builder
            .add_xml(&read_sample(&format!("mining{i}.xml")))
            .unwrap();
        builder
            .add_xml(&read_sample(&format!("network{i}.xml")))
            .unwrap();
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(2);
    config.params = SimParams::new(0.5, 0.5);
    // Seed 3 starts the two representatives in distinct topics on this
    // corpus, giving the clean two-cluster model the assertions expect.
    config.seed = 3;
    let fit = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid training config")
        .fit(&ds)
        .expect("training runs");
    assert!(fit.converged, "training must converge");
    let model = fit.into_model(&ds, BuildOptions::default());
    let held_out = vec![
        ("mining6.xml".to_string(), read_sample("mining6.xml")),
        ("network6.xml".to_string(), read_sample("network6.xml")),
    ];
    (model, held_out)
}

/// One blocking HTTP request against the test server.
fn http_request(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> (String, String) {
    let request = format!(
        "POST {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    http_request(addr, &request)
}

fn post_classify(addr: std::net::SocketAddr, xml: &str) -> (String, String) {
    post(addr, "/classify", xml)
}

/// Pulls a header value out of a response head.
fn header_field(head: &str, name: &str) -> String {
    head.lines()
        .find_map(|line| {
            let (n, v) = line.split_once(':')?;
            n.eq_ignore_ascii_case(name).then(|| v.trim().to_string())
        })
        .unwrap_or_else(|| panic!("{name} in {head}"))
}

/// The model epoch a response claims to have been answered at.
fn response_epoch(head: &str) -> u64 {
    header_field(head, "X-Model-Epoch")
        .parse()
        .expect("numeric epoch")
}

/// Pulls `"field":value` out of the flat JSON the server emits.
fn json_field(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("delimiter after {field} in {body}"));
    rest[..end].to_string()
}

#[test]
fn snapshot_reload_classify_and_serve_round_trip() {
    let (model, held_out) = train_held_out();

    // Snapshot to disk and reload: the model must survive bit-exactly.
    let path = std::env::temp_dir().join(format!("cxk-serve-it-{}.cxkmodel", std::process::id()));
    std::fs::write(&path, save_model(&model)).expect("write snapshot");
    let reloaded = load_model(&std::fs::read(&path).expect("read snapshot")).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reloaded.reps.len(), model.reps.len());
    for (a, b) in reloaded.reps.iter().zip(&model.reps) {
        assert_eq!(a.items, b.items, "representatives must round-trip");
    }

    // Classify the held-out documents from the *reloaded* model: indexed
    // and brute-force assignments agree exactly, and the two topics land
    // in two distinct proper clusters.
    let mut classifier = Classifier::new(reloaded);
    let mut clusters = Vec::new();
    for (name, xml) in &held_out {
        let indexed = classifier.classify(xml).expect("classify");
        let brute = classifier.classify_brute(xml).expect("brute");
        assert_eq!(indexed.cluster, brute.cluster, "{name}");
        assert_eq!(indexed.score, brute.score, "bit-for-bit score: {name}");
        for (a, b) in indexed.tuples.iter().zip(&brute.tuples) {
            assert_eq!(a.cluster, b.cluster, "{name}");
            assert_eq!(a.similarity, b.similarity, "{name}");
            assert!(a.candidates <= b.candidates, "{name}: index may only prune");
        }
        assert_ne!(
            indexed.cluster,
            classifier.trash_id(),
            "{name} must join a proper cluster"
        );
        clusters.push(indexed.cluster);
    }
    assert_ne!(
        clusters[0], clusters[1],
        "mining and networking hold-outs separate"
    );

    // Live server round-trip over localhost: same cluster ids.
    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            brute_force: false,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    for ((name, xml), &expected) in held_out.iter().zip(&clusters) {
        let (head, body) = post_classify(addr, xml);
        assert!(head.starts_with("HTTP/1.1 200"), "{name}: {head}");
        assert_eq!(
            json_field(&body, "cluster"),
            expected.to_string(),
            "{name}: server and local classification agree ({body})"
        );
        assert_eq!(json_field(&body, "trash"), "false", "{name}");
    }

    // Malformed XML → 400 with an error payload.
    let (head, body) = post_classify(addr, "<broken><xml>");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("error"), "{body}");

    // GET /model reports the trained shape.
    let (head, body) = http_request(
        addr,
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "k"), "2");
    assert_eq!(json_field(&body, "trained_documents"), "10");

    // GET /stats counts what we did: 3 classify calls, 1 of them an error.
    let (head, body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "classified"), "2");
    assert_eq!(json_field(&body, "errors"), "1");

    // Batch classify: a JSON array of XML strings answers with one
    // assignment object per document, in order, with the same cluster ids
    // as the single-document requests.
    {
        let escape = cxk_serve::json_escape;
        let batch = format!(
            r#"["{}","{}","<broken><xml>"]"#,
            escape(&held_out[0].1),
            escape(&held_out[1].1)
        );
        let (head, body) = post_classify(addr, &batch);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        // First entry: the mining hold-out, same cluster as the
        // single-document request; second entry follows after the first
        // object's tuple array closes.
        assert!(
            body.starts_with(&format!(r#"[{{"cluster":{},"#, clusters[0])),
            "{body}"
        );
        assert!(
            body.contains(&format!(r#"]}},{{"cluster":{},"#, clusters[1])),
            "{body}"
        );
        // The malformed third document errors inline, last.
        assert!(body.contains(r#"]},{"error":"#), "{body}");
    }

    // Unknown endpoint → 404.
    let (head, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // An oversized request head (here one 64 KiB header) must be rejected,
    // not buffered without bound. The server may close mid-send, so write
    // errors are ignored and only the response matters.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let huge = format!(
            "GET /model HTTP/1.1\r\nX-Flood: {}\r\n\r\n",
            "a".repeat(64 << 10)
        );
        let _ = stream.write_all(huge.as_bytes());
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 431"),
            "oversized head must 431: {response}"
        );
        assert!(response.contains("exceeds"), "{response}");
    }

    // An idle connection (no bytes sent) must not block anyone: with the
    // event-driven transport it pins a buffer, not a thread, and the next
    // request still gets through immediately.
    {
        let idle = TcpStream::connect(addr).expect("connect idle");
        std::thread::sleep(std::time::Duration::from_millis(400));
        let (head, _) = http_request(
            addr,
            "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        drop(idle);
    }

    server.shutdown();
}

#[test]
fn server_handles_concurrent_clients() {
    let (model, held_out) = train_held_out();
    let mut classifier = Classifier::new(model.clone());
    let expected: Vec<u32> = held_out
        .iter()
        .map(|(_, xml)| classifier.classify(xml).unwrap().cluster)
        .collect();

    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 4,
            brute_force: false,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let (_, xml) = held_out[i % held_out.len()].clone();
            let want = expected[i % expected.len()];
            std::thread::spawn(move || {
                let (head, body) = post_classify(addr, &xml);
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                assert_eq!(json_field(&body, "cluster"), want.to_string(), "{body}");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let stats = server.stats();
    assert_eq!(stats.connections, 8);
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.classified, 8);
    assert_eq!(stats.trash, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.reloads, 0);
    assert_eq!(stats.epoch, 1, "no reload: still the boot model");
    server.shutdown();
}

/// A second, deliberately different model over the same corpus (k = 3,
/// another seed), so a swap is observable: `GET /model` reports a new
/// shape and classifications answer with the other model's clusters.
fn train_variant() -> TrainedModel {
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for i in 1..=5 {
        builder
            .add_xml(&read_sample(&format!("mining{i}.xml")))
            .unwrap();
        builder
            .add_xml(&read_sample(&format!("network{i}.xml")))
            .unwrap();
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(3);
    config.params = SimParams::new(0.5, 0.5);
    config.seed = 11;
    EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid variant config")
        .fit(&ds)
        .expect("training runs")
        .into_model(&ds, BuildOptions::default())
}

fn scratch_file(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cxk-serve-it-{}-{name}", std::process::id()))
}

#[test]
fn post_reload_swaps_and_rejects_incompatible_snapshots() {
    let (model_a, held_out) = train_held_out();
    let model_b = train_variant();
    let (_, xml) = &held_out[0];
    let expected_a = Classifier::new(model_a.clone())
        .classify(xml)
        .unwrap()
        .cluster;
    let expected_b = Classifier::new(model_b.clone())
        .classify(xml)
        .unwrap()
        .cluster;

    let a_path = scratch_file("reload-a.cxkmodel");
    let b_path = scratch_file("reload-b.cxkmodel");
    save_model_file(&model_a, &a_path).expect("write A");
    save_model_file(&model_b, &b_path).expect("write B");

    let server = Server::start(
        model_a.clone(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            model_path: Some(a_path.clone()),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Epoch 1: the boot model answers.
    let (head, body) = post_classify(addr, xml);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(response_epoch(&head), 1);
    assert_eq!(json_field(&body, "cluster"), expected_a.to_string());

    // Swap to B by POSTing its path: 200 with the new epoch.
    let (head, body) = post(addr, "/reload", b_path.to_str().unwrap());
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
    assert_eq!(response_epoch(&head), 2);
    assert_eq!(json_field(&body, "reloaded"), "true");
    assert_eq!(json_field(&body, "epoch"), "2");

    // The swap is visible everywhere: /model reports B's shape and the
    // new epoch, classifications answer with B's clusters.
    let (head, body) = http_request(
        addr,
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "epoch"), "2");
    assert_eq!(json_field(&body, "k"), "3");
    let (head, body) = post_classify(addr, xml);
    assert_eq!(response_epoch(&head), 2);
    assert_eq!(json_field(&body, "cluster"), expected_b.to_string());

    // An empty body re-reads the path the server was started from (A).
    let (head, body) = post(addr, "/reload", "");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
    assert_eq!(json_field(&body, "epoch"), "3");
    let (head, body) = post_classify(addr, xml);
    assert_eq!(response_epoch(&head), 3);
    assert_eq!(json_field(&body, "cluster"), expected_a.to_string());

    // A missing file conflicts; the live model is untouched.
    let (head, body) = post(addr, "/reload", "/nonexistent/model.cxkmodel");
    assert!(head.starts_with("HTTP/1.1 409"), "{head}: {body}");
    assert_eq!(server.epoch(), 3);

    // Garbage bytes conflict too.
    let garbage = scratch_file("reload-garbage.cxkmodel");
    std::fs::write(&garbage, b"definitely not a snapshot").unwrap();
    let (head, body) = post(addr, "/reload", garbage.to_str().unwrap());
    assert!(head.starts_with("HTTP/1.1 409"), "{head}: {body}");
    assert!(body.contains("not a .cxkmodel"), "{body}");

    // A future format version is rejected by the peek — before the
    // checksum is even consulted — and names the version mismatch.
    let mut future = save_model(&model_b);
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    let future_path = scratch_file("reload-future.cxkmodel");
    std::fs::write(&future_path, &future).unwrap();
    let (head, body) = post(addr, "/reload", future_path.to_str().unwrap());
    assert!(head.starts_with("HTTP/1.1 409"), "{head}: {body}");
    assert!(body.contains("version 99"), "{body}");
    assert_eq!(server.epoch(), 3, "rejected swaps never disturb the model");

    // A corrupt payload (checksum mismatch) conflicts as well.
    let mut corrupt = save_model(&model_b);
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xFF;
    let corrupt_path = scratch_file("reload-corrupt.cxkmodel");
    std::fs::write(&corrupt_path, &corrupt).unwrap();
    let (head, body) = post(addr, "/reload", corrupt_path.to_str().unwrap());
    assert!(head.starts_with("HTTP/1.1 409"), "{head}: {body}");
    assert!(body.contains("checksum"), "{body}");

    // The library surface: swap an in-memory model directly.
    assert_eq!(server.reload(model_b.clone()), 4);
    let (head, _) = post_classify(addr, xml);
    assert_eq!(response_epoch(&head), 4);

    let stats = server.stats();
    assert_eq!(stats.epoch, 4);
    assert_eq!(stats.reloads, 3, "two POSTed swaps + one library swap");
    assert_eq!(stats.reload_errors, 4, "four rejected snapshots");

    for path in [&a_path, &b_path, &garbage, &future_path, &corrupt_path] {
        let _ = std::fs::remove_file(path);
    }
    server.shutdown();
}

#[test]
fn watch_poller_hot_swaps_on_file_change() {
    let (model_a, _) = train_held_out();
    let model_b = train_variant();
    let path = scratch_file("watch.cxkmodel");
    save_model_file(&model_a, &path).expect("write A");

    let server = Server::start(
        model_a,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            model_path: Some(path.clone()),
            watch: Some(Duration::from_millis(100)),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    assert_eq!(server.epoch(), 1);

    // Give the poller a beat to capture the initial mtime/digest, then
    // retrain "on disk": the watcher must pick the new snapshot up.
    std::thread::sleep(Duration::from_millis(200));
    save_model_file(&model_b, &path).expect("write B");
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.epoch() < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(server.epoch(), 2, "watcher swaps the changed snapshot in");
    let (head, body) = http_request(
        server.addr(),
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "epoch"), "2");
    assert_eq!(json_field(&body, "k"), "3", "B is live");

    // Rewriting *identical* contents moves the mtime but not the digest:
    // no swap, no worker rebuilds.
    save_model_file(&model_b, &path).expect("rewrite B");
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(server.epoch(), 2, "unchanged contents are not a new model");

    // A corrupt overwrite is rejected and the live model keeps serving.
    std::fs::write(&path, b"half-written garbage").unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().reload_errors == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(server.stats().reload_errors >= 1, "rejection is counted");
    assert_eq!(server.epoch(), 2, "the live model is untouched");

    let _ = std::fs::remove_file(&path);
    server.shutdown();
}

/// The tentpole's torture test: several client threads hammer
/// `POST /classify` while the model is swapped repeatedly through *both*
/// reload surfaces. Every response must arrive complete and be
/// self-consistent with exactly one epoch — the cluster it reports is the
/// one the model of its claimed epoch assigns, never a mix.
#[test]
fn hot_reload_under_concurrent_load_drops_nothing() {
    let (model_a, held_out) = train_held_out();
    let model_b = train_variant();

    // Per-document expectations under each model, computed locally.
    let docs: Vec<String> = held_out.iter().map(|(_, xml)| xml.clone()).collect();
    let mut classifier_a = Classifier::new(model_a.clone());
    let mut classifier_b = Classifier::new(model_b.clone());
    let expected: Vec<(u32, u32)> = docs
        .iter()
        .map(|xml| {
            (
                classifier_a.classify(xml).unwrap().cluster,
                classifier_b.classify(xml).unwrap().cluster,
            )
        })
        .collect();

    let b_path = scratch_file("torture-b.cxkmodel");
    save_model_file(&model_b, &b_path).expect("write B");

    let server = Server::start(
        model_a.clone(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 4,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Epoch parity is the oracle: the boot model A is epoch 1 and swaps
    // strictly alternate B, A, B, … so odd epochs serve A, even serve B.
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 40;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let docs = docs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = (c + r) % docs.len();
                    let (head, body) = post_classify(addr, &docs[i]);
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    let epoch = response_epoch(&head);
                    let want = if epoch % 2 == 1 {
                        expected[i].0
                    } else {
                        expected[i].1
                    };
                    assert_eq!(
                        json_field(&body, "cluster"),
                        want.to_string(),
                        "epoch {epoch} must answer with its own model's cluster: {body}"
                    );
                }
            })
        })
        .collect();

    // Swap away while the clients hammer: even swaps POST B's snapshot
    // path, odd swaps push A back through the library API.
    const SWAPS: usize = 20;
    for i in 0..SWAPS {
        if i % 2 == 0 {
            let (head, body) = post(addr, "/reload", b_path.to_str().unwrap());
            assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
        } else {
            server.reload(model_a.clone());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    for client in clients {
        client
            .join()
            .expect("no client may observe a dropped or malformed response");
    }

    let stats = server.stats();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as u64;
    assert_eq!(stats.classified, total, "zero dropped classifications");
    assert_eq!(stats.errors, 0, "zero malformed responses");
    assert_eq!(stats.reloads, SWAPS as u64);
    assert_eq!(stats.epoch, 1 + SWAPS as u64);
    assert_eq!(
        stats.requests,
        total + SWAPS as u64 / 2,
        "every classify and every POSTed reload parsed"
    );
    assert_eq!(
        stats.connections, stats.requests,
        "all connections well-formed"
    );

    let _ = std::fs::remove_file(&b_path);
    server.shutdown();
}

/// The end-to-end retrain loop the ROADMAP asked for:
/// `StreamClusterer` refresh → `snapshot_model` → `Server::reload`, with
/// the service answering throughout.
#[test]
fn stream_retrain_feeds_the_running_server() {
    let base: Vec<String> = (1..=3)
        .flat_map(|i| {
            [
                read_sample(&format!("mining{i}.xml")),
                read_sample(&format!("network{i}.xml")),
            ]
        })
        .collect();
    let base_refs: Vec<&str> = base.iter().map(String::as_str).collect();
    let mut opts = cxk_stream::StreamOptions::new(2);
    opts.config.params = SimParams::new(0.5, 0.5);
    opts.config.seed = 3;
    opts.policy = cxk_stream::RefreshPolicy::manual();
    let mut clusterer = cxk_stream::StreamClusterer::new(&base_refs, opts).expect("bootstrap");

    let server = Server::start(
        clusterer.snapshot_model(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let (head, body) = http_request(
        addr,
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "epoch"), "1");
    assert_eq!(json_field(&body, "trained_documents"), "6");

    // The corpus evolves; the periodic retrain re-clusters and swaps.
    for i in 4..=5 {
        clusterer
            .push(&read_sample(&format!("mining{i}.xml")))
            .expect("push");
        clusterer
            .push(&read_sample(&format!("network{i}.xml")))
            .expect("push");
    }
    clusterer.refresh();
    let epoch = server.reload(clusterer.snapshot_model());
    assert_eq!(epoch, 2);

    let (head, body) = http_request(
        addr,
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "epoch"), "2");
    assert_eq!(json_field(&body, "trained_documents"), "10");

    // The swapped-in model classifies held-out documents normally.
    let (head, body) = post_classify(addr, &read_sample("mining6.xml"));
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {body}");
    assert_eq!(response_epoch(&head), 2);
    server.shutdown();
}

/// A sharded server answers exactly like a replicated one, and its
/// `GET /stats` surfaces the engine layout plus per-shard detail.
#[test]
fn sharded_server_matches_replicated_and_reports_shard_stats() {
    let (model, held_out) = train_held_out();
    let mut classifier = Classifier::new(model.clone());
    let expected: Vec<u32> = held_out
        .iter()
        .map(|(_, xml)| classifier.classify(xml).unwrap().cluster)
        .collect();

    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 3,
            shards: Some(3),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    for ((name, xml), &want) in held_out.iter().zip(&expected) {
        let (head, body) = post_classify(addr, xml);
        assert!(head.starts_with("HTTP/1.1 200"), "{name}: {head}");
        assert_eq!(json_field(&body, "cluster"), want.to_string(), "{name}");
    }

    let (head, body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(body.contains(r#""engine":"sharded""#), "{body}");
    assert_eq!(json_field(&body, "shards"), "3", "{body}");
    assert!(body.contains(r#""shard_stats":[{"#), "{body}");
    // Three per-shard objects, each reporting its owned representatives.
    assert_eq!(body.matches(r#""reps":"#).count(), 3, "{body}");
    assert!(json_field(&body, "postings_bytes").parse::<u64>().unwrap() > 0);
    server.shutdown();
}

/// Reload under load while scattering: client threads hammer a *sharded*
/// server while the model is swapped repeatedly, so the shared shard
/// engine is rebuilt per epoch mid-traffic. Every response must be
/// self-consistent with exactly one epoch, exactly like the replicated
/// torture test.
#[test]
fn sharded_reload_under_concurrent_load_stays_epoch_consistent() {
    let (model_a, held_out) = train_held_out();
    let model_b = train_variant();

    let docs: Vec<String> = held_out.iter().map(|(_, xml)| xml.clone()).collect();
    let mut classifier_a = Classifier::new(model_a.clone());
    let mut classifier_b = Classifier::new(model_b.clone());
    let expected: Vec<(u32, u32)> = docs
        .iter()
        .map(|xml| {
            (
                classifier_a.classify(xml).unwrap().cluster,
                classifier_b.classify(xml).unwrap().cluster,
            )
        })
        .collect();

    let server = Server::start(
        model_a.clone(),
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 4,
            shards: Some(4),
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Epoch parity is the oracle: boot model A is epoch 1 and swaps
    // strictly alternate B, A, B, … so odd epochs serve A, even serve B.
    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 30;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let docs = docs.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for r in 0..REQUESTS_PER_CLIENT {
                    let i = (c + r) % docs.len();
                    let (head, body) = post_classify(addr, &docs[i]);
                    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                    let epoch = response_epoch(&head);
                    let want = if epoch % 2 == 1 {
                        expected[i].0
                    } else {
                        expected[i].1
                    };
                    assert_eq!(
                        json_field(&body, "cluster"),
                        want.to_string(),
                        "epoch {epoch} must answer with its own model's cluster: {body}"
                    );
                }
            })
        })
        .collect();

    const SWAPS: usize = 16;
    for i in 0..SWAPS {
        if i % 2 == 0 {
            server.reload(model_b.clone());
        } else {
            server.reload(model_a.clone());
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    for client in clients {
        client
            .join()
            .expect("no client may observe a dropped or malformed response");
    }

    let stats = server.stats();
    assert_eq!(
        stats.classified,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        "zero dropped classifications across sharded swaps"
    );
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.reloads, SWAPS as u64);
    assert_eq!(stats.epoch, 1 + SWAPS as u64);
    server.shutdown();
}

#[test]
fn counters_split_connections_from_requests() {
    let (model, _) = train_held_out();
    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // 1: a well-formed request — both counters move.
    let (head, body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "connections"), "1");
    assert_eq!(json_field(&body, "requests"), "1");

    // 2: a malformed request line — a connection, never a request.
    let (head, _) = http_request(addr, "GARBAGE\r\n\r\n");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");

    // 3: duplicate Content-Length — refused as smuggling hygiene.
    let (head, body) = http_request(
        addr,
        "POST /classify HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 2\r\n\r\nhello",
    );
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("duplicate Content-Length"), "{body}");

    // 4: a `+`-prefixed Content-Length — `u64::from_str` would take it,
    // the header grammar does not.
    let (head, body) = http_request(
        addr,
        "POST /classify HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello",
    );
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("bad Content-Length"), "{body}");

    let stats = server.stats();
    assert_eq!(stats.connections, 4, "every connection counted");
    assert_eq!(stats.requests, 1, "only the parsed request counted");
    assert_eq!(stats.errors, 3, "the three refusals counted as errors");
    server.shutdown();
}
