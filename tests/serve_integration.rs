//! End-to-end test of the serving pipeline (ISSUE 2's acceptance
//! criterion): train on `samples/`, snapshot to disk, reload, classify
//! held-out documents — indexed assignments must match brute-force
//! `sim_gamma_j` assignments exactly — and a live HTTP server round-trip
//! over localhost must return the same cluster ids.

use cxk_core::{load_model, save_model, CxkConfig, EngineBuilder, TrainedModel};
use cxk_serve::{Classifier, ServeOptions, Server};
use cxk_transact::{BuildOptions, DatasetBuilder, SimParams};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn samples_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../samples")
}

fn read_sample(name: &str) -> String {
    std::fs::read_to_string(samples_dir().join(name)).expect("sample exists")
}

/// Trains on ten of the twelve samples, holding out one per topic.
fn train_held_out() -> (TrainedModel, Vec<(String, String)>) {
    let mut builder = DatasetBuilder::new(BuildOptions::default());
    for i in 1..=5 {
        builder
            .add_xml(&read_sample(&format!("mining{i}.xml")))
            .unwrap();
        builder
            .add_xml(&read_sample(&format!("network{i}.xml")))
            .unwrap();
    }
    let ds = builder.finish();
    let mut config = CxkConfig::new(2);
    config.params = SimParams::new(0.5, 0.5);
    // Seed 3 starts the two representatives in distinct topics on this
    // corpus, giving the clean two-cluster model the assertions expect.
    config.seed = 3;
    let fit = EngineBuilder::from_cxk_config(&config)
        .build()
        .expect("valid training config")
        .fit(&ds)
        .expect("training runs");
    assert!(fit.converged, "training must converge");
    let model = fit.into_model(&ds, BuildOptions::default());
    let held_out = vec![
        ("mining6.xml".to_string(), read_sample("mining6.xml")),
        ("network6.xml".to_string(), read_sample("network6.xml")),
    ];
    (model, held_out)
}

/// One blocking HTTP request against the test server.
fn http_request(addr: std::net::SocketAddr, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    (head.to_string(), body.to_string())
}

fn post_classify(addr: std::net::SocketAddr, xml: &str) -> (String, String) {
    let request = format!(
        "POST /classify HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{xml}",
        xml.len()
    );
    http_request(addr, &request)
}

/// Pulls `"field":value` out of the flat JSON the server emits.
fn json_field(body: &str, field: &str) -> String {
    let key = format!("\"{field}\":");
    let start = body
        .find(&key)
        .unwrap_or_else(|| panic!("{field} in {body}"))
        + key.len();
    let rest = &body[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("delimiter after {field} in {body}"));
    rest[..end].to_string()
}

#[test]
fn snapshot_reload_classify_and_serve_round_trip() {
    let (model, held_out) = train_held_out();

    // Snapshot to disk and reload: the model must survive bit-exactly.
    let path = std::env::temp_dir().join(format!("cxk-serve-it-{}.cxkmodel", std::process::id()));
    std::fs::write(&path, save_model(&model)).expect("write snapshot");
    let reloaded = load_model(&std::fs::read(&path).expect("read snapshot")).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(reloaded.reps.len(), model.reps.len());
    for (a, b) in reloaded.reps.iter().zip(&model.reps) {
        assert_eq!(a.items, b.items, "representatives must round-trip");
    }

    // Classify the held-out documents from the *reloaded* model: indexed
    // and brute-force assignments agree exactly, and the two topics land
    // in two distinct proper clusters.
    let mut classifier = Classifier::new(reloaded);
    let mut clusters = Vec::new();
    for (name, xml) in &held_out {
        let indexed = classifier.classify(xml).expect("classify");
        let brute = classifier.classify_brute(xml).expect("brute");
        assert_eq!(indexed.cluster, brute.cluster, "{name}");
        assert_eq!(indexed.score, brute.score, "bit-for-bit score: {name}");
        for (a, b) in indexed.tuples.iter().zip(&brute.tuples) {
            assert_eq!(a.cluster, b.cluster, "{name}");
            assert_eq!(a.similarity, b.similarity, "{name}");
            assert!(a.candidates <= b.candidates, "{name}: index may only prune");
        }
        assert_ne!(
            indexed.cluster,
            classifier.trash_id(),
            "{name} must join a proper cluster"
        );
        clusters.push(indexed.cluster);
    }
    assert_ne!(
        clusters[0], clusters[1],
        "mining and networking hold-outs separate"
    );

    // Live server round-trip over localhost: same cluster ids.
    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 2,
            brute_force: false,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    for ((name, xml), &expected) in held_out.iter().zip(&clusters) {
        let (head, body) = post_classify(addr, xml);
        assert!(head.starts_with("HTTP/1.1 200"), "{name}: {head}");
        assert_eq!(
            json_field(&body, "cluster"),
            expected.to_string(),
            "{name}: server and local classification agree ({body})"
        );
        assert_eq!(json_field(&body, "trash"), "false", "{name}");
    }

    // Malformed XML → 400 with an error payload.
    let (head, body) = post_classify(addr, "<broken><xml>");
    assert!(head.starts_with("HTTP/1.1 400"), "{head}");
    assert!(body.contains("error"), "{body}");

    // GET /model reports the trained shape.
    let (head, body) = http_request(
        addr,
        "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "k"), "2");
    assert_eq!(json_field(&body, "trained_documents"), "10");

    // GET /stats counts what we did: 3 classify calls, 1 of them an error.
    let (head, body) = http_request(
        addr,
        "GET /stats HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert_eq!(json_field(&body, "classified"), "2");
    assert_eq!(json_field(&body, "errors"), "1");

    // Batch classify: a JSON array of XML strings answers with one
    // assignment object per document, in order, with the same cluster ids
    // as the single-document requests.
    {
        let escape = cxk_serve::json_escape;
        let batch = format!(
            r#"["{}","{}","<broken><xml>"]"#,
            escape(&held_out[0].1),
            escape(&held_out[1].1)
        );
        let (head, body) = post_classify(addr, &batch);
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        // First entry: the mining hold-out, same cluster as the
        // single-document request; second entry follows after the first
        // object's tuple array closes.
        assert!(
            body.starts_with(&format!(r#"[{{"cluster":{},"#, clusters[0])),
            "{body}"
        );
        assert!(
            body.contains(&format!(r#"]}},{{"cluster":{},"#, clusters[1])),
            "{body}"
        );
        // The malformed third document errors inline, last.
        assert!(body.contains(r#"]},{"error":"#), "{body}");
    }

    // Unknown endpoint → 404.
    let (head, _) = http_request(
        addr,
        "GET /nope HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
    );
    assert!(head.starts_with("HTTP/1.1 404"), "{head}");

    // An oversized request head (here one 64 KiB header) must be rejected,
    // not buffered without bound. The server may close mid-send, so write
    // errors are ignored and only the response matters.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let huge = format!(
            "GET /model HTTP/1.1\r\nX-Flood: {}\r\n\r\n",
            "a".repeat(64 << 10)
        );
        let _ = stream.write_all(huge.as_bytes());
        let mut response = String::new();
        let _ = stream.read_to_string(&mut response);
        assert!(
            response.starts_with("HTTP/1.1 400"),
            "oversized head must 400: {response}"
        );
        assert!(response.contains("exceeds"), "{response}");
    }

    // An idle connection (no bytes sent) must not wedge its worker: with
    // the read timeout the server answers 400 and the next request still
    // gets through.
    {
        let idle = TcpStream::connect(addr).expect("connect idle");
        std::thread::sleep(std::time::Duration::from_millis(400));
        let (head, _) = http_request(
            addr,
            "GET /model HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n",
        );
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        drop(idle);
    }

    server.shutdown();
}

#[test]
fn server_handles_concurrent_clients() {
    let (model, held_out) = train_held_out();
    let mut classifier = Classifier::new(model.clone());
    let expected: Vec<u32> = held_out
        .iter()
        .map(|(_, xml)| classifier.classify(xml).unwrap().cluster)
        .collect();

    let server = Server::start(
        model,
        ("127.0.0.1", 0),
        ServeOptions {
            threads: 4,
            brute_force: false,
            ..ServeOptions::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    let handles: Vec<_> = (0..8)
        .map(|i| {
            let (_, xml) = held_out[i % held_out.len()].clone();
            let want = expected[i % expected.len()];
            std::thread::spawn(move || {
                let (head, body) = post_classify(addr, &xml);
                assert!(head.starts_with("HTTP/1.1 200"), "{head}");
                assert_eq!(json_field(&body, "cluster"), want.to_string(), "{body}");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    let (requests, classified, trash, errors) = server.stats();
    assert_eq!(requests, 8);
    assert_eq!(classified, 8);
    assert_eq!(trash, 0);
    assert_eq!(errors, 0);
    server.shutdown();
}
