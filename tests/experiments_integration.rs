//! Experiment-harness integration: miniature versions of every table and
//! figure, asserting the qualitative shapes the paper reports.

use cxk_bench::experiments::{
    accuracy_table, churn_resilience, default_gamma, fig7, fig8, saturation, vsm_comparison,
    ExperimentOptions,
};
use cxk_bench::{prepare, CorpusKind};
use cxk_corpus::ClusteringSetting;
use cxk_p2p::CostModel;

fn opts(kind: CorpusKind) -> ExperimentOptions {
    ExperimentOptions {
        gamma: default_gamma(kind),
        runs: 2,
        full_f_grid: false,
        seed: 31,
        max_rounds: 15,
        cost: CostModel::default(),
    }
}

#[test]
fn fig7_time_drops_with_first_peers() {
    // The headline Fig. 7 effect needs a full-size corpus: on tiny inputs
    // per-round cost is too small for the 1/m parallelism to dominate the
    // extra collaborative rounds.
    let p = prepare(CorpusKind::Dblp, 1.0, 41);
    let rows = fig7(&p, "full", &[1, 5], &opts(CorpusKind::Dblp));
    assert_eq!(rows.len(), 2);
    assert!(
        rows[1].seconds < rows[0].seconds,
        "m=5 ({:.4}s) must beat m=1 ({:.4}s)",
        rows[1].seconds,
        rows[0].seconds
    );
}

#[test]
fn fig7_half_corpus_is_faster_than_full() {
    let kind = CorpusKind::Dblp;
    let full = prepare(kind, 1.0, 42);
    let half = prepare(kind, 0.5, 42);
    let o = opts(kind);
    let full_rows = fig7(&full, "full", &[1, 3], &o);
    let half_rows = fig7(&half, "half", &[1, 3], &o);
    for (f, h) in full_rows.iter().zip(&half_rows) {
        assert!(
            h.seconds < f.seconds,
            "half ({:.4}) !< full ({:.4}) at m = {}",
            h.seconds,
            f.seconds,
            f.m
        );
    }
}

#[test]
fn table_scores_stay_in_unit_interval_and_m1_is_strong() {
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.3, 43);
    let rows = accuracy_table(&p, ClusteringSetting::Structure, &[1, 5], true, &opts(kind));
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.f_mean));
    }
    // Centralized structure-driven clustering on DBLP is near-perfect in
    // the paper (0.991); the reproduction should be strong too.
    assert!(
        rows[0].f_mean > 0.75,
        "m=1 structure F = {}",
        rows[0].f_mean
    );
}

#[test]
fn unequal_partition_scores_at_most_slightly_above_equal() {
    // Table 2 vs Table 1: unequal distribution degrades accuracy a little.
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.3, 44);
    let o = opts(kind);
    let equal = accuracy_table(&p, ClusteringSetting::Structure, &[5], true, &o);
    let unequal = accuracy_table(&p, ClusteringSetting::Structure, &[5], false, &o);
    // Allow noise, but unequal must not beat equal by a wide margin.
    assert!(
        unequal[0].f_mean <= equal[0].f_mean + 0.1,
        "unequal {} vs equal {}",
        unequal[0].f_mean,
        equal[0].f_mean
    );
}

#[test]
fn fig8_pk_traffic_dominates_cxk() {
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.3, 45);
    let rows = fig8(&p, &[5, 9], &opts(kind));
    for row in &rows {
        assert!(
            row.pk_kbytes > row.cxk_kbytes,
            "PK traffic must exceed CXK at m = {}: {} vs {}",
            row.m,
            row.pk_kbytes,
            row.cxk_kbytes
        );
    }
}

#[test]
fn saturation_knee_is_interior_for_dblp() {
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.5, 46);
    let report = saturation(&p, &[1, 2, 3, 4, 6, 8], &opts(kind));
    assert!(report.measured_knee > 1, "knee at m = 1 means no speedup");
    assert!(report.h_estimate >= 1.0);
}

#[test]
fn vsm_comparison_produces_unit_interval_scores_for_both() {
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.2, 47);
    let row = vsm_comparison(&p, ClusteringSetting::Structure, &opts(kind));
    assert!((0.0..=1.0).contains(&row.cxk_f), "cxk F = {}", row.cxk_f);
    assert!((0.0..=1.0).contains(&row.vsm_f), "vsm F = {}", row.vsm_f);
    assert_eq!(row.k, p.k_structure);
    // Structure-driven DBLP is where the transactional model pays
    // (EXPERIMENTS.md E10): CXK must at least match the flat baseline.
    assert!(
        row.cxk_f >= row.vsm_f - 0.05,
        "cxk {} must not lose to vsm {} on structure",
        row.cxk_f,
        row.vsm_f
    );
}

#[test]
fn churn_resilience_coverage_shrinks_with_departures() {
    let kind = CorpusKind::Dblp;
    let p = prepare(kind, 0.2, 48);
    let rows = churn_resilience(&p, 6, &[0, 3], &opts(kind));
    assert_eq!(rows.len(), 2);
    assert!((rows[0].coverage - 1.0).abs() < 1e-12);
    assert!((rows[1].coverage - 0.5).abs() < 0.1, "3 of 6 peers leave");
    // Mid-run departure must not collapse covered-subset quality relative
    // to the static survivors (the E12 reliability claim).
    assert!(
        rows[1].covered_f > rows[1].static_f - 0.15,
        "churned {} vs static {}",
        rows[1].covered_f,
        rows[1].static_f
    );
}
