//! Collaborative-protocol integration: the threaded (real message-passing)
//! runner against the simulated driver, traffic accounting, and lockstep
//! robustness across network shapes.

use cxk_bench::{prepare, CorpusKind};
use cxk_core::{Backend, CxkConfig, EngineBuilder};
use cxk_corpus::partition_equal;
use cxk_p2p::CostModel;
use cxk_transact::SimParams;

/// Engine-backed runs over an explicit partition.
fn fit_backend(
    ds: &cxk_transact::Dataset,
    partition: &[Vec<usize>],
    config: &CxkConfig,
    threaded: bool,
) -> cxk_core::ClusteringOutcome {
    let peers = partition.len();
    let backend = if threaded {
        Backend::ThreadedP2p { peers }
    } else {
        Backend::SimulatedP2p { peers }
    };
    EngineBuilder::from_cxk_config(config)
        .backend(backend)
        .partition(partition.to_vec())
        .build()
        .expect("valid test config")
        .fit(ds)
        .expect("fit succeeds")
        .into_outcome()
}

fn fit_collaborative(
    ds: &cxk_transact::Dataset,
    partition: &[Vec<usize>],
    config: &CxkConfig,
) -> cxk_core::ClusteringOutcome {
    fit_backend(ds, partition, config, false)
}

fn fit_threaded(
    ds: &cxk_transact::Dataset,
    partition: &[Vec<usize>],
    config: &CxkConfig,
) -> cxk_core::ClusteringOutcome {
    fit_backend(ds, partition, config, true)
}

fn config(k: usize) -> CxkConfig {
    CxkConfig {
        k,
        params: SimParams::new(0.5, 0.6),
        max_rounds: 12,
        max_inner: 10,
        seed: 5,
        cost: CostModel::default(),
        weighted_merge: true,
    }
}

#[test]
fn threaded_and_simulated_agree_on_dblp() {
    let p = prepare(CorpusKind::Dblp, 0.15, 21);
    let n = p.dataset.stats.transactions;
    for m in [1, 2, 4] {
        let partition = partition_equal(n, m, 7);
        let cfg = config(p.k_structure);
        let simulated = fit_collaborative(&p.dataset, &partition, &cfg);
        let threaded = fit_threaded(&p.dataset, &partition, &cfg);
        assert_eq!(
            simulated.assignments, threaded.assignments,
            "partitions diverge at m = {m}"
        );
        assert_eq!(
            simulated.rounds, threaded.rounds,
            "rounds diverge at m = {m}"
        );
        assert_eq!(simulated.converged, threaded.converged);
    }
}

#[test]
fn threaded_handles_more_peers_than_clusters() {
    let p = prepare(CorpusKind::Dblp, 0.1, 22);
    let n = p.dataset.stats.transactions;
    // k = 2 but m = 6: four peers own no cluster and must not deadlock.
    let outcome = fit_threaded(&p.dataset, &partition_equal(n, 6, 1), &config(2));
    assert_eq!(outcome.assignments.len(), n);
}

#[test]
fn threaded_handles_starved_peers() {
    let p = prepare(CorpusKind::Dblp, 0.05, 23);
    let n = p.dataset.stats.transactions;
    // More peers than is sensible for the data: some peers hold 1-2
    // transactions, exercising empty local clusters.
    let m = (n / 2).clamp(2, 12);
    let outcome = fit_threaded(&p.dataset, &partition_equal(n, m, 2), &config(3));
    assert_eq!(outcome.cluster_sizes().iter().sum::<usize>(), n);
}

#[test]
fn traffic_grows_with_network_size() {
    let p = prepare(CorpusKind::Dblp, 0.15, 24);
    let n = p.dataset.stats.transactions;
    let cfg = config(p.k_structure);
    let small = fit_collaborative(&p.dataset, &partition_equal(n, 2, 3), &cfg);
    let large = fit_collaborative(&p.dataset, &partition_equal(n, 8, 3), &cfg);
    let small_rate = small.total_bytes as f64 / small.rounds.max(1) as f64;
    let large_rate = large.total_bytes as f64 / large.rounds.max(1) as f64;
    assert!(
        large_rate > small_rate,
        "per-round traffic must grow with m: {small_rate} vs {large_rate}"
    );
}

#[test]
fn threaded_traffic_matches_message_census() {
    // Every byte in the ledger belongs to a message, and message count is
    // positive whenever m > 1.
    let p = prepare(CorpusKind::Dblp, 0.1, 25);
    let n = p.dataset.stats.transactions;
    let outcome = fit_threaded(&p.dataset, &partition_equal(n, 3, 4), &config(3));
    assert!(outcome.total_messages > 0);
    assert!(outcome.total_bytes >= outcome.total_messages * 16);
}

#[test]
fn deterministic_across_repeated_threaded_runs() {
    let p = prepare(CorpusKind::Dblp, 0.1, 26);
    let n = p.dataset.stats.transactions;
    let partition = partition_equal(n, 3, 5);
    let a = fit_threaded(&p.dataset, &partition, &config(4));
    let b = fit_threaded(&p.dataset, &partition, &config(4));
    assert_eq!(a.assignments, b.assignments);
    assert_eq!(a.total_bytes, b.total_bytes);
}
